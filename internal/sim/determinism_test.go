package sim_test

// Determinism regression tests: the entire simulation must be a pure
// function of its Config (seed included). Two runs with the same seed
// must agree byte for byte, and the parallel experiment driver must
// produce exactly the bytes the serial driver does — otherwise every
// figure in the paper reproduction becomes schedule-dependent. These
// tests are the executable counterpart of the dhtlint rules (norand,
// nowallclock, maporder, seedflow); see docs/LINTING.md.

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"chordbalance/internal/experiments"
	"chordbalance/internal/faults"
	"chordbalance/internal/ring"
	"chordbalance/internal/sim"
	"chordbalance/internal/strategy"
)

// -update rewrites testdata/determinism_golden.txt from the current
// engine. Only do this for *intentional* behavior changes, and say so in
// the commit message — the file is the referee that lets pure
// performance work prove it changed nothing.
var updateGolden = flag.Bool("update", false, "rewrite determinism golden testdata")

// determinismStrategies are the four policies exercised by the
// regression: the baseline, the paper's headline random strategy, a
// neighbor-coordination strategy, and an invitation strategy. Between
// them they cover every RNG consumer in the engine: churn draws, Sybil
// placement, arc selection, and invitation targeting.
var determinismStrategies = []string{"none", "random", "neighbor", "invitation"}

// summarize flattens a Result into a single string covering every field
// that could expose nondeterminism, with map-typed fields emitted in
// sorted key order.
func summarize(res *sim.Result) string {
	s := fmt.Sprintf("ticks=%d ideal=%d factor=%.9f completed=%v hosts=%d vnodes=%d",
		res.Ticks, res.IdealTicks, res.RuntimeFactor, res.Completed,
		res.FinalAliveHosts, res.FinalVNodes)
	s += fmt.Sprintf(" joins=%d leaves=%d sybils=%d/%d lookups=%d maint=%d",
		res.Messages.Joins, res.Messages.Leaves,
		res.Messages.SybilsCreated, res.Messages.SybilsDropped,
		res.Messages.LookupMessages, res.Messages.Maintenance)
	kinds := make([]string, 0, len(res.Messages.Strategy))
	for k := range res.Messages.Strategy {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		s += fmt.Sprintf(" strat[%s]=%d", k, res.Messages.Strategy[k])
	}
	strengths := make([]int, 0, len(res.CompletedByStrength))
	for k := range res.CompletedByStrength {
		strengths = append(strengths, k)
	}
	sort.Ints(strengths)
	for _, k := range strengths {
		s += fmt.Sprintf(" done[%d]=%d", k, res.CompletedByStrength[k])
	}
	for _, snap := range res.Snapshots {
		s += fmt.Sprintf(" snap%d=%v", snap.Tick, snap.HostWorkloads)
	}
	return s
}

func determinismConfig(t *testing.T, name string, seed uint64) sim.Config {
	t.Helper()
	st, ok := strategy.ByName(name)
	if !ok {
		t.Fatalf("unknown strategy %q", name)
	}
	return sim.Config{
		Nodes:         150,
		Tasks:         6000,
		Strategy:      st,
		ChurnRate:     0.01,
		Heterogeneous: true,
		Seed:          seed,
		SnapshotTicks: []int{0, 5},
	}
}

// TestRunSeedReproducible runs each strategy twice with the same seed
// and demands byte-identical summaries.
func TestRunSeedReproducible(t *testing.T) {
	for _, name := range determinismStrategies {
		t.Run(name, func(t *testing.T) {
			var got [2]string
			for i := range got {
				res, err := sim.Run(determinismConfig(t, name, 42))
				if err != nil {
					t.Fatal(err)
				}
				got[i] = summarize(res)
			}
			if got[0] != got[1] {
				t.Errorf("same seed, different outcome:\n run1: %s\n run2: %s", got[0], got[1])
			}
		})
	}
}

// fullSummary extends summarize with everything else a Result carries:
// the complete topology event log (digested), fault accounting, and the
// per-virtual-node workload vectors of every snapshot. Any reordering
// anywhere in the engine shows up here.
func fullSummary(res *sim.Result) string {
	s := summarize(res)
	h := fnv.New64a()
	for _, e := range res.Events {
		fmt.Fprintf(h, "%d/%d/%d/%s/%d;", e.Tick, e.Kind, e.Host, e.ID, e.Moved)
	}
	s += fmt.Sprintf(" events=%d:%016x", len(res.Events), h.Sum64())
	f := res.Faults
	s += fmt.Sprintf(" faults=%d/%d/%d/%d/%d/%d/%d/%d/%d/%d",
		f.Crashes, f.CrashedVNodes, f.KeysRecovered, f.KeysLost, f.Resubmitted,
		f.RepairWaves, f.RepairMessages, f.BlockedJoins, f.BlockedSybils, f.PartitionTicks)
	for _, snap := range res.Snapshots {
		s += fmt.Sprintf(" vsnap%d=%v", snap.Tick, snap.VNodeWorkloads)
	}
	return s
}

// goldenCases cover every consumption mode and every RNG consumer —
// churn, Sybil placement, crash draws, partitions — per strategy family.
func goldenCases() []struct {
	name string
	cfg  sim.Config
} {
	plan := faults.Plan{Seed: 99, CrashRate: 0.002, BurstEvery: 20, BurstSize: 2,
		PartitionFrac: 0.3, PartitionStart: 10, PartitionHeal: 40}
	var cases []struct {
		name string
		cfg  sim.Config
	}
	for _, mode := range []struct {
		name string
		mode ring.ConsumeMode
	}{{"front", ring.ConsumeFront}, {"back", ring.ConsumeBack}, {"alternate", ring.ConsumeAlternate}} {
		for _, strat := range []string{"random", "invitation"} {
			st, ok := strategy.ByName(strat)
			if !ok {
				panic("unknown strategy " + strat)
			}
			cases = append(cases, struct {
				name string
				cfg  sim.Config
			}{
				name: "consume-" + mode.name + "/" + strat,
				cfg: sim.Config{Nodes: 120, Tasks: 4000, Strategy: st,
					ChurnRate: 0.01, ConsumeMode: mode.mode, Seed: 4242,
					RecordEvents: true, SnapshotTicks: []int{0, 5, 20}},
			})
		}
	}
	for _, strat := range []string{"none", "random", "neighbor", "invitation", "oracle", "targeted"} {
		st, ok := strategy.ByName(strat)
		if !ok {
			panic("unknown strategy " + strat)
		}
		cases = append(cases, struct {
			name string
			cfg  sim.Config
		}{
			name: "churn-faults/" + strat,
			cfg: sim.Config{Nodes: 150, Tasks: 6000, Strategy: st,
				ChurnRate: 0.01, Heterogeneous: true, Seed: 77, Faults: plan,
				RecordEvents: true, SnapshotTicks: []int{0, 10}},
		})
	}
	return cases
}

// TestDeterminismGolden pins the byte-exact outcome of a matrix of runs
// — all three consumption modes, plus churn + crash/partition faults per
// strategy — against testdata/determinism_golden.txt. The file was
// recorded before the O(1)-hot-path rewrite (PR 3), so passing it proves
// the cached ring index, the Seed merge, and the workload caches changed
// no emitted byte. Regenerate with `go test ./internal/sim -run
// DeterminismGolden -update` only for intentional behavior changes.
func TestDeterminismGolden(t *testing.T) {
	path := filepath.Join("testdata", "determinism_golden.txt")
	got := make(map[string]string)
	var order []string
	for _, c := range goldenCases() {
		res, err := sim.Run(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got[c.name] = fullSummary(res)
		order = append(order, c.name)
	}
	if *updateGolden {
		var b strings.Builder
		for _, name := range order {
			fmt.Fprintf(&b, "%s: %s\n", name, got[name])
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d cases)", path, len(order))
		return
	}
	want := loadGolden(t, path)
	for _, name := range order {
		if want[name] == "" {
			t.Errorf("%s: no golden entry (run with -update)", name)
			continue
		}
		if got[name] != want[name] {
			t.Errorf("%s: engine output drifted from pre-optimization golden:\n got:  %s\n want: %s",
				name, got[name], want[name])
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden entry %s no longer generated", name)
		}
	}
}

// loadGolden parses a name-to-summary golden file recorded by
// TestDeterminismGolden's -update mode.
func loadGolden(t *testing.T, path string) map[string]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to record): %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		name, sum, ok := strings.Cut(line, ": ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[name] = sum
	}
	return want
}

// TestSerialParallelIdentical runs the experiment driver once with a
// single worker and once with several, over the same seeds, and demands
// byte-identical aggregate statistics. The parallel driver may schedule
// trials in any order, but each trial's seed — and therefore its result
// — must not depend on which goroutine ran it.
func TestSerialParallelIdentical(t *testing.T) {
	for _, name := range determinismStrategies {
		t.Run(name, func(t *testing.T) {
			fn := func(seed uint64) sim.Config {
				return determinismConfig(t, name, seed)
			}
			var got [2]string
			for i, workers := range []int{1, 4} {
				stat, err := experiments.FactorStat(fn, 0,
					experiments.Options{Trials: 6, Seed: 7, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				got[i] = fmt.Sprintf("%v min=%.9f max=%.9f", stat, stat.Min, stat.Max)
			}
			if got[0] != got[1] {
				t.Errorf("serial and parallel drivers disagree:\n serial:   %s\n parallel: %s", got[0], got[1])
			}
		})
	}
}
