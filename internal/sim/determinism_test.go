package sim_test

// Determinism regression tests: the entire simulation must be a pure
// function of its Config (seed included). Two runs with the same seed
// must agree byte for byte, and the parallel experiment driver must
// produce exactly the bytes the serial driver does — otherwise every
// figure in the paper reproduction becomes schedule-dependent. These
// tests are the executable counterpart of the dhtlint rules (norand,
// nowallclock, maporder, seedflow); see docs/LINTING.md.

import (
	"fmt"
	"sort"
	"testing"

	"chordbalance/internal/experiments"
	"chordbalance/internal/sim"
	"chordbalance/internal/strategy"
)

// determinismStrategies are the four policies exercised by the
// regression: the baseline, the paper's headline random strategy, a
// neighbor-coordination strategy, and an invitation strategy. Between
// them they cover every RNG consumer in the engine: churn draws, Sybil
// placement, arc selection, and invitation targeting.
var determinismStrategies = []string{"none", "random", "neighbor", "invitation"}

// summarize flattens a Result into a single string covering every field
// that could expose nondeterminism, with map-typed fields emitted in
// sorted key order.
func summarize(res *sim.Result) string {
	s := fmt.Sprintf("ticks=%d ideal=%d factor=%.9f completed=%v hosts=%d vnodes=%d",
		res.Ticks, res.IdealTicks, res.RuntimeFactor, res.Completed,
		res.FinalAliveHosts, res.FinalVNodes)
	s += fmt.Sprintf(" joins=%d leaves=%d sybils=%d/%d lookups=%d maint=%d",
		res.Messages.Joins, res.Messages.Leaves,
		res.Messages.SybilsCreated, res.Messages.SybilsDropped,
		res.Messages.LookupMessages, res.Messages.Maintenance)
	kinds := make([]string, 0, len(res.Messages.Strategy))
	for k := range res.Messages.Strategy {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		s += fmt.Sprintf(" strat[%s]=%d", k, res.Messages.Strategy[k])
	}
	strengths := make([]int, 0, len(res.CompletedByStrength))
	for k := range res.CompletedByStrength {
		strengths = append(strengths, k)
	}
	sort.Ints(strengths)
	for _, k := range strengths {
		s += fmt.Sprintf(" done[%d]=%d", k, res.CompletedByStrength[k])
	}
	for _, snap := range res.Snapshots {
		s += fmt.Sprintf(" snap%d=%v", snap.Tick, snap.HostWorkloads)
	}
	return s
}

func determinismConfig(t *testing.T, name string, seed uint64) sim.Config {
	t.Helper()
	st, ok := strategy.ByName(name)
	if !ok {
		t.Fatalf("unknown strategy %q", name)
	}
	return sim.Config{
		Nodes:         150,
		Tasks:         6000,
		Strategy:      st,
		ChurnRate:     0.01,
		Heterogeneous: true,
		Seed:          seed,
		SnapshotTicks: []int{0, 5},
	}
}

// TestRunSeedReproducible runs each strategy twice with the same seed
// and demands byte-identical summaries.
func TestRunSeedReproducible(t *testing.T) {
	for _, name := range determinismStrategies {
		t.Run(name, func(t *testing.T) {
			var got [2]string
			for i := range got {
				res, err := sim.Run(determinismConfig(t, name, 42))
				if err != nil {
					t.Fatal(err)
				}
				got[i] = summarize(res)
			}
			if got[0] != got[1] {
				t.Errorf("same seed, different outcome:\n run1: %s\n run2: %s", got[0], got[1])
			}
		})
	}
}

// TestSerialParallelIdentical runs the experiment driver once with a
// single worker and once with several, over the same seeds, and demands
// byte-identical aggregate statistics. The parallel driver may schedule
// trials in any order, but each trial's seed — and therefore its result
// — must not depend on which goroutine ran it.
func TestSerialParallelIdentical(t *testing.T) {
	for _, name := range determinismStrategies {
		t.Run(name, func(t *testing.T) {
			fn := func(seed uint64) sim.Config {
				return determinismConfig(t, name, seed)
			}
			var got [2]string
			for i, workers := range []int{1, 4} {
				stat, err := experiments.FactorStat(fn, 0,
					experiments.Options{Trials: 6, Seed: 7, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				got[i] = fmt.Sprintf("%v min=%.9f max=%.9f", stat, stat.Min, stat.Max)
			}
			if got[0] != got[1] {
				t.Errorf("serial and parallel drivers disagree:\n serial:   %s\n parallel: %s", got[0], got[1])
			}
		})
	}
}
