package symphony

import (
	"math"
	"testing"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/xrand"
)

func build(t testing.TB, n int, cfg Config, seed uint64) *Network {
	t.Helper()
	g := keys.NewGenerator(seed)
	nw, err := Build(g.NodeIDs(n), cfg, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Config{}, xrand.New(1)); err != ErrEmpty {
		t.Errorf("empty build: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate IDs must panic")
		}
	}()
	dup := []ids.ID{ids.FromUint64(1), ids.FromUint64(1)}
	Build(dup, Config{}, xrand.New(1))
}

func TestSingleNode(t *testing.T) {
	nw := build(t, 1, Config{}, 2)
	owner, hops, err := nw.Lookup(nw.sorted[0], ids.FromUint64(42))
	if err != nil || hops != 0 || owner != nw.sorted[0] {
		t.Errorf("single node lookup = %v, %d, %v", owner, hops, err)
	}
}

func TestLookupMatchesOracle(t *testing.T) {
	nw := build(t, 64, Config{}, 3)
	rng := xrand.New(4)
	start := nw.sorted[0]
	for i := 0; i < 300; i++ {
		key := ids.Random(rng)
		owner, _, err := nw.Lookup(start, key)
		if err != nil {
			t.Fatal(err)
		}
		if owner != nw.managerOf(key) {
			t.Fatalf("lookup owner %s != manager %s", owner.Short(), nw.managerOf(key).Short())
		}
	}
	if nw.Messages() == 0 {
		t.Error("no messages counted")
	}
}

func TestLookupFromEveryNode(t *testing.T) {
	nw := build(t, 32, Config{LongLinks: 2}, 5)
	key := ids.Random(xrand.New(6))
	want := nw.managerOf(key)
	for _, start := range nw.sorted {
		owner, _, err := nw.Lookup(start, key)
		if err != nil {
			t.Fatalf("from %s: %v", start.Short(), err)
		}
		if owner != want {
			t.Fatalf("from %s: owner %s != %s", start.Short(), owner.Short(), want.Short())
		}
	}
}

func TestUnknownStartNode(t *testing.T) {
	nw := build(t, 8, Config{}, 7)
	if _, _, err := nw.Lookup(ids.FromUint64(12345), ids.FromUint64(1)); err == nil {
		t.Error("unknown start must fail")
	}
}

func TestHopsScaleSubLinear(t *testing.T) {
	// Symphony's expected path length is O(log^2 n / k): going 64 -> 512
	// nodes (8x) must grow hops far less than 8x.
	mean := func(n int) float64 {
		nw := build(t, n, Config{LongLinks: 4}, 11)
		rng := xrand.New(12)
		total := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			start := nw.sorted[rng.Intn(len(nw.sorted))]
			_, hops, err := nw.Lookup(start, ids.Random(rng))
			if err != nil {
				t.Fatal(err)
			}
			total += hops
		}
		return float64(total) / trials
	}
	m64, m512 := mean(64), mean(512)
	if m512 > m64*4 {
		t.Errorf("hops grew superlinearly: %v @64 -> %v @512", m64, m512)
	}
	// And the theory line: ~log2(n)^2 / (2k) with k=4.
	predict := func(n int) float64 {
		l := math.Log2(float64(n))
		return l * l / 8
	}
	if m512 > 4*predict(512) {
		t.Errorf("hops @512 = %v, theory ~%v", m512, predict(512))
	}
}

func TestMoreLongLinksFewerHops(t *testing.T) {
	mean := func(k int) float64 {
		nw := build(t, 256, Config{LongLinks: k}, 13)
		rng := xrand.New(14)
		total := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			start := nw.sorted[rng.Intn(len(nw.sorted))]
			_, hops, err := nw.Lookup(start, ids.Random(rng))
			if err != nil {
				t.Fatal(err)
			}
			total += hops
		}
		return float64(total) / trials
	}
	k1, k8 := mean(1), mean(8)
	if k8 >= k1 {
		t.Errorf("k=8 (%v hops) must beat k=1 (%v hops)", k8, k1)
	}
}

func TestRoutingState(t *testing.T) {
	nw := build(t, 128, Config{LongLinks: 4, ShortLinks: 2}, 15)
	rs := nw.RoutingState()
	// At most short+long per node; long links that would self-loop are
	// dropped, so the mean sits at or just under 6.
	if rs > 6.01 || rs < 3 {
		t.Errorf("routing state = %v, want ~6", rs)
	}
}

func TestFractionID(t *testing.T) {
	if fractionID(0) != ids.Zero {
		t.Error("fraction 0 must be zero offset")
	}
	if fractionID(1.5) != ids.Max {
		t.Error("fraction >= 1 must clamp")
	}
	half := fractionID(0.5)
	if half != ids.PowerOfTwo(159) {
		t.Errorf("fraction 0.5 = %v, want 2^159", half)
	}
}

func TestNodeLinks(t *testing.T) {
	nw := build(t, 16, Config{LongLinks: 3, ShortLinks: 2}, 16)
	n := nw.Node(nw.sorted[0])
	if n == nil {
		t.Fatal("node lookup failed")
	}
	links := n.Links()
	if len(links) < 2 {
		t.Errorf("links = %d, want at least the short links", len(links))
	}
	if links[0] != nw.sorted[1] {
		t.Error("first short link must be the immediate successor")
	}
	if n.ID() != nw.sorted[0] {
		t.Error("ID accessor wrong")
	}
}
