// Package symphony implements the Symphony small-world overlay (Manku,
// Bawa & Raghavan, USITS 2003) — the protocol underneath the competing
// P2P MapReduce system the paper discusses in §II (Lee et al.). Nodes sit
// on the same identifier ring as Chord but route greedily over a few
// harmonically-distributed long links instead of O(log n) fingers,
// trading routing state for expected O(log²n / k) hops.
//
// Implementing it alongside internal/chord lets the repository quantify
// the paper's §II positioning ("a loosely-consistent DHT ... can be much
// slower and fails to maintain the same level of guarantees as an actual
// DHT, such as Chord"): the overlay-hops experiment routes the same
// lookups over both substrates and compares hop counts and routing state.
//
// The implementation is deliberately static: links are drawn once at
// construction from the true network size (real Symphony estimates n
// from arc lengths; the estimate concentrates tightly, so using n keeps
// the comparison about routing structure, not estimator noise).
package symphony

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

// Errors returned by lookups.
var (
	ErrEmpty   = errors.New("symphony: empty overlay")
	ErrNoRoute = errors.New("symphony: lookup exceeded hop budget")
)

// Config tunes the overlay.
type Config struct {
	// LongLinks is k, the number of long-distance links per node.
	// Symphony's sweet spot is small (the paper uses k <= 8); default 4.
	LongLinks int
	// ShortLinks is the number of immediate successors each node keeps
	// (route of last resort and correctness anchor). Default 2.
	ShortLinks int
	// MaxHops bounds one lookup. Default 4096 — generous because greedy
	// clockwise routing on short links alone needs O(n) in the worst case.
	MaxHops int
}

func (c Config) withDefaults() Config {
	if c.LongLinks == 0 {
		c.LongLinks = 4
	}
	if c.ShortLinks == 0 {
		c.ShortLinks = 2
	}
	if c.MaxHops == 0 {
		c.MaxHops = 4096
	}
	return c
}

// Node is one Symphony participant.
type Node struct {
	id ids.ID
	// short are the ShortLinks immediate successors, nearest first.
	short []ids.ID
	// long are the harmonic long-distance links.
	long []ids.ID
}

// ID returns the node's ring identifier.
func (n *Node) ID() ids.ID { return n.id }

// Links returns all outgoing links (short then long).
func (n *Node) Links() []ids.ID {
	out := make([]ids.ID, 0, len(n.short)+len(n.long))
	out = append(out, n.short...)
	out = append(out, n.long...)
	return out
}

// Network is a fully built Symphony overlay.
type Network struct {
	cfg    Config
	sorted []ids.ID // ascending
	nodes  map[ids.ID]*Node
	msgs   int
}

// Build constructs the overlay for the given node IDs with links drawn
// from rng. It panics on duplicate IDs (caller bug) and returns an error
// for an empty ID list.
func Build(nodeIDs []ids.ID, cfg Config, rng *xrand.Rand) (*Network, error) {
	if len(nodeIDs) == 0 {
		return nil, ErrEmpty
	}
	cfg = cfg.withDefaults()
	sorted := append([]ids.ID(nil), nodeIDs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			panic(fmt.Sprintf("symphony: duplicate node ID %s", sorted[i].Short()))
		}
	}
	nw := &Network{cfg: cfg, sorted: sorted, nodes: make(map[ids.ID]*Node, len(sorted))}
	n := len(sorted)
	for i, id := range sorted {
		node := &Node{id: id}
		for s := 1; s <= cfg.ShortLinks && s < n; s++ {
			node.short = append(node.short, sorted[(i+s)%n])
		}
		// Harmonic long links: distance fraction x = exp(ln n * (u - 1))
		// lands in [1/n, 1) with pdf ~ 1/(x ln n). Link to the manager of
		// own + x*2^160.
		for l := 0; l < cfg.LongLinks && n > cfg.ShortLinks+1; l++ {
			x := math.Exp(math.Log(float64(n)) * (rng.Float64() - 1))
			target := id.Add(fractionID(x))
			mgr := nw.managerOf(target)
			if mgr != id {
				node.long = append(node.long, mgr)
			}
		}
		nw.nodes[id] = node
	}
	return nw, nil
}

// fractionID converts x in [0,1) to an ID offset x * 2^160.
func fractionID(x float64) ids.ID {
	if x <= 0 {
		return ids.Zero
	}
	if x >= 1 {
		return ids.Max
	}
	// Top 64 bits of the fraction.
	hi := uint64(x * math.Exp2(64))
	var off ids.ID
	for i := 0; i < 8; i++ {
		off[i] = byte(hi >> (56 - 8*i))
	}
	return off
}

// managerOf returns the node responsible for key: Symphony, like Chord,
// assigns each key to the first node clockwise at or after it.
func (nw *Network) managerOf(key ids.ID) ids.ID {
	i := sort.Search(len(nw.sorted), func(i int) bool {
		return key.Compare(nw.sorted[i]) <= 0
	})
	if i == len(nw.sorted) {
		i = 0
	}
	return nw.sorted[i]
}

// Len returns the number of nodes.
func (nw *Network) Len() int { return len(nw.sorted) }

// Node returns the node with the given ID, or nil.
func (nw *Network) Node(id ids.ID) *Node { return nw.nodes[id] }

// Messages returns the routed message count so far.
func (nw *Network) Messages() int { return nw.msgs }

// RoutingState returns the mean number of outgoing links per node — the
// state a node must maintain, Symphony's headline saving over Chord.
func (nw *Network) RoutingState() float64 {
	total := 0
	for _, n := range nw.nodes {
		total += len(n.short) + len(n.long)
	}
	return float64(total) / float64(len(nw.nodes))
}

// Lookup routes greedily from the given start node to the manager of
// key: each hop forwards to the link that minimizes the remaining
// clockwise distance without overshooting the target. Returns the owner
// and hop count.
func (nw *Network) Lookup(from ids.ID, key ids.ID) (ids.ID, int, error) {
	cur, ok := nw.nodes[from]
	if !ok {
		return ids.Zero, 0, fmt.Errorf("symphony: unknown start node %s", from.Short())
	}
	owner := nw.managerOf(key)
	hops := 0
	for cur.id != owner {
		if hops >= nw.cfg.MaxHops {
			return ids.Zero, hops, ErrNoRoute
		}
		// Remaining clockwise distance from cur to the owner.
		remain := cur.id.Distance(owner)
		var next ids.ID
		best := remain
		for _, link := range cur.Links() {
			// Distance from link onward; overshooting the owner shows up
			// as a larger (wrapped) distance, so min() rejects it.
			d := link.Distance(owner)
			if d.Compare(best) < 0 {
				best = d
				next = link
			}
		}
		if best == remain {
			// No link advances us (possible only with degenerate
			// configurations); fall back to the first successor.
			next = cur.short[0]
		}
		nw.msgs++
		hops++
		cur = nw.nodes[next]
	}
	return owner, hops, nil
}
