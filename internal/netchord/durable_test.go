package netchord

import (
	"fmt"
	"testing"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/obs"
	"chordbalance/internal/wire"
	"chordbalance/internal/xrand"
)

// getFromRing reads key through any live node, retrying across the
// stabilization cadence while the ring absorbs a failure.
func getFromRing(t *testing.T, cfg Config, nodes []*Node, key ids.ID, timeout time.Duration) ([]byte, uint64, error) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		for _, nd := range nodes {
			v, ver, err := nd.GetVer(key)
			if err == nil {
				return v, ver, nil
			}
			lastErr = err
		}
		if time.Now().After(deadline) {
			return nil, 0, lastErr
		}
		time.Sleep(cfg.Ticks(cfg.StabilizeEveryTicks))
	}
}

// TestDurableAckSurvivesOwnerCrash is the headline durability claim:
// with Replicas=2, a write acknowledged by the owner is fsynced locally
// AND applied at one successor before the ack — so crash-stopping the
// owner (R-1 = 1 failure) immediately after the ack can never lose it.
func TestDurableAckSurvivesOwnerCrash(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	nodes := startRing(t, NewPipeTransport(), cfg, 5)
	awaitRing(t, cfg, nodes, 10*time.Second)

	rng := xrand.New(31)
	type acked struct {
		ver   uint64
		value []byte
	}
	writes := make(map[ids.ID]acked)
	for i := 0; i < 24; i++ {
		key := ids.Random(rng)
		val := []byte(fmt.Sprintf("durable-%d", i))
		ver, err := nodes[i%len(nodes)].PutVer(key, val)
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		writes[key] = acked{ver: ver, value: val}
	}

	// Crash-stop one owner — no Leave, no handoff, just gone. Every key
	// it owned must survive on its replica.
	victim := nodes[2]
	victim.Close()
	survivors := append(append([]*Node(nil), nodes[:2]...), nodes[3:]...)

	for key, w := range writes {
		v, ver, err := getFromRing(t, cfg, survivors, key, 15*time.Second)
		if err != nil {
			t.Fatalf("acked write %s unreadable after owner crash: %v", key.Short(), err)
		}
		if ver < w.ver {
			t.Fatalf("acked write %s regressed: ver %d < acked %d", key.Short(), ver, w.ver)
		}
		if ver == w.ver && string(v) != string(w.value) {
			t.Fatalf("acked bytes lost for %s: %q != %q", key.Short(), v, w.value)
		}
	}
}

// TestCrashRestartRecovery proves restart-from-log: a crash-stopped
// node reopened under the same identity and DataDir replays its segment
// log and rejoins holding every key it held before the crash.
func TestCrashRestartRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	nodes := startRing(t, NewPipeTransport(), cfg, 3)
	awaitRing(t, cfg, nodes, 10*time.Second)

	rng := xrand.New(32)
	keys := make([]ids.ID, 16)
	for i := range keys {
		keys[i] = ids.Random(rng)
		if err := nodes[0].Put(keys[i], []byte("recover-"+keys[i].Short())); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	victim := nodes[1]
	id := victim.ID()
	before := victim.KeyCount()
	victim.Close() // crash-stop: the segment log stays on disk
	// Let the survivors route around the corpse first: a rejoin under
	// the same identity is refused while stale pointers still map that
	// ID to the dead incarnation's address.
	awaitRing(t, cfg, []*Node{nodes[0], nodes[2]}, 10*time.Second)

	// Reopen under the same identity and data directory: the store
	// replays the log before the node touches the network.
	tr := nodes[0].tr
	revived, err := NewNode(cfg, tr, nil, id, "")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(revived.Close)
	if got := revived.KeyCount(); got != before {
		t.Fatalf("replay recovered %d keys, held %d before the crash", got, before)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err = revived.Join(nodes[0].Addr()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoin: %v", err)
		}
		time.Sleep(cfg.Ticks(cfg.StabilizeEveryTicks))
	}
	revived.Start()
	ring := []*Node{nodes[0], revived, nodes[2]}
	awaitRing(t, cfg, ring, 10*time.Second)

	for _, key := range keys {
		v, _, err := getFromRing(t, cfg, ring, key, 10*time.Second)
		if err != nil {
			t.Fatalf("key %s lost across restart: %v", key.Short(), err)
		}
		if string(v) != "recover-"+key.Short() {
			t.Fatalf("key %s bytes wrong after restart: %q", key.Short(), v)
		}
	}
}

// TestAntiEntropyConvergence diverges a replica by hand and proves the
// background Merkle descent repairs it without any client traffic: the
// owner's primary-arc digest and the replica's copy converge.
func TestAntiEntropyConvergence(t *testing.T) {
	cfg := testConfig()
	nodes := startRing(t, NewPipeTransport(), cfg, 2)
	awaitRing(t, cfg, nodes, 10*time.Second)

	// Write records straight into node 0's store — no replication, the
	// exact state a partition leaves behind.
	rng := xrand.New(33)
	a, b := nodes[0], nodes[1]
	for i := 0; i < 40; i++ {
		key := ids.Random(rng)
		if _, err := a.st.Put(key, []byte("diverged-"+key.Short())); err != nil {
			t.Fatal(err)
		}
	}
	if da, _ := a.st.Digest(ids.Zero, ids.Zero); func() bool {
		db, _ := b.st.Digest(ids.Zero, ids.Zero)
		return da == db
	}() {
		t.Fatal("stores agree before anti-entropy ran; divergence setup failed")
	}

	// On a two-node ring with Replicas=2 each node replicates the
	// other's whole arc, so convergence means full-store equality.
	deadline := time.Now().Add(20 * time.Second)
	for {
		da, na := a.st.Digest(ids.Zero, ids.Zero)
		db, nb := b.st.Digest(ids.Zero, ids.Zero)
		if da == db && na == nb {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("anti-entropy did not converge: %d vs %d keys", na, nb)
		}
		time.Sleep(cfg.Ticks(cfg.AntiEntropyEveryTicks))
	}
	if a.Stats().AntiEntropyRounds == 0 && b.Stats().AntiEntropyRounds == 0 {
		t.Fatal("converged with zero anti-entropy rounds recorded")
	}
}

// storeReportSeq is a deterministic TStoreReport/TConsumeReport stream
// for driving a collector directly (no network, no goroutines).
func storeReportSeq() []*wire.Msg {
	host1 := ids.FromUint64(101)
	host2 := ids.FromUint64(102)
	return []*wire.Msg{
		{Type: wire.THello, From: wire.NodeRef{ID: host1}, A: 1},
		{Type: wire.THello, From: wire.NodeRef{ID: host2}, A: 1},
		{Type: wire.TConsumeReport, From: wire.NodeRef{ID: host1}, A: 10, B: 2, C: 1, D: 9},
		{Type: wire.TStoreReport, From: wire.NodeRef{ID: host1}, A: 5, B: 2, C: 3, D: 4096},
		{Type: wire.TStoreReport, From: wire.NodeRef{ID: host2}, A: 7, B: 1, C: 0, D: 0},
		{Type: wire.TStoreReport, From: wire.NodeRef{ID: host1}, A: 9, B: 4, C: 11, D: 9999},
		{Type: wire.TConsumeReport, From: wire.NodeRef{ID: host2}, A: 3, B: 0, C: 2, D: 5},
	}
}

// TestCollectorStoreReportTracedEqualsUntraced locks the observability
// invariant: a tracer must never change what the collector computes,
// only record it.
func TestCollectorStoreReportTracedEqualsUntraced(t *testing.T) {
	tr := NewPipeTransport()
	plain, err := NewCollector(testConfig(), tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	sink := &obs.MemSink{}
	traced, err := NewCollector(testConfig(), tr, "", obs.New(sink))
	if err != nil {
		t.Fatal(err)
	}
	defer traced.Close()

	for _, m := range storeReportSeq() {
		plain.handle(m)
		traced.handle(m)
	}
	p, q := plain.Progress(), traced.Progress()
	if p != q {
		t.Fatalf("tracer changed collector state:\nplain:  %+v\ntraced: %+v", p, q)
	}
	if p.Acked != 16 || p.AntiEntropyRounds != 5 || p.AntiEntropyRepairs != 11 || p.AntiEntropyBytes != 9999 {
		t.Fatalf("store aggregation wrong: %+v", p)
	}
	if len(sink.Bytes()) == 0 {
		t.Fatal("traced collector emitted nothing")
	}
}

// TestCollectorEmitZeroAllocsWhenUntraced guards the hot path: with no
// tracer attached, the per-report emit must not allocate.
func TestCollectorEmitZeroAllocsWhenUntraced(t *testing.T) {
	tr := NewPipeTransport()
	c, err := NewCollector(testConfig(), tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, m := range storeReportSeq() {
		c.handle(m)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.mu.Lock()
		c.emitLocked()
		c.mu.Unlock()
	})
	if allocs != 0 {
		t.Fatalf("untraced emit allocates %.1f per call", allocs)
	}
}
