// Package netchord is the networked Chord runtime: goroutine-per-node
// servers that speak the internal/wire protocol over real net.Conn
// streams, with background stabilization, per-peer connection pooling,
// request timeouts with tick-denominated backoff, and the paper's four
// load-balancing strategies (induced churn, random injection, neighbor
// injection, invitation) driven by each node's own local loop instead of
// a global tick scheduler.
//
// Everything the simulator abstracts away is concrete here: lookups are
// sequences of round trips that can time out, joins are handshakes that
// can fail halfway, stabilization races with churn, and the
// internal/faults plan is mapped onto real sockets by a fault-injecting
// conn wrapper (drop, duplicate, delay, two-sided partition). The
// runtime therefore trades the simulator's byte-determinism for real
// concurrency: a fault plan's *decisions* are still drawn from its
// seeded streams, but which message meets which decision depends on
// scheduling, exactly as it would in a deployment. The simulator
// (internal/sim) remains the deterministic layer and is untouched by —
// and does not import — this package.
//
// Two transports hide behind one interface: loopback TCP (the default;
// multi-process capable) and an in-process pipe transport built on
// net.Pipe for tests that want thousands of "connections" without file
// descriptors. cmd/chordd runs one or many nodes; cmd/dhtload drives a
// cluster at a target request rate over sockets. See docs/NETWORK.md
// for the message flow, node lifecycle, and fault mapping.
package netchord

import (
	"errors"
	"time"

	"chordbalance/internal/ids"
)

// Runtime errors surfaced by client operations.
var (
	// ErrTimeout means every attempt (original + retries) of one RPC
	// failed or timed out.
	ErrTimeout = errors.New("netchord: rpc timed out after retries")
	// ErrPartitioned means the destination is on the other side of an
	// active network partition.
	ErrPartitioned = errors.New("netchord: destination unreachable across partition")
	// ErrNoRoute means a lookup exceeded its hop budget.
	ErrNoRoute = errors.New("netchord: lookup exceeded hop budget")
	// ErrNotFound means the key's owner does not hold it.
	ErrNotFound = errors.New("netchord: key not found")
	// ErrClosed means the node or cluster has been shut down.
	ErrClosed = errors.New("netchord: closed")
	// ErrRemote wraps a TError reply from a peer.
	ErrRemote = errors.New("netchord: remote error")
)

// Config tunes one node (and, via Host/Cluster, a whole runtime). The
// zero value is usable: WithDefaults fills every field.
type Config struct {
	// TickEvery is the real-time length of one logical tick. Backoff,
	// fault delays, and maintenance cadences are all denominated in
	// ticks and scaled by this duration, mirroring the simulator's
	// abstract clock. Default 5ms.
	TickEvery time.Duration
	// SuccessorListLen is r in the Chord paper. Default 8.
	SuccessorListLen int
	// Replicas is how many successors mirror each key. Default 2.
	Replicas int
	// MaxHops bounds one lookup. Default 3*ids.Bits.
	MaxHops int
	// RPCTimeoutTicks is the per-attempt request timeout, in ticks.
	// Default 40.
	RPCTimeoutTicks int
	// MaxRetries bounds RPC re-attempts after a failure; the k-th retry
	// waits faults.Backoff(BackoffBaseTicks, k) ticks first, reusing the
	// retry policy of internal/chord's transport. Default 3.
	MaxRetries int
	// BackoffBaseTicks is the base backoff before the first retry, in
	// ticks. Default 1.
	BackoffBaseTicks int
	// StabilizeEveryTicks is the cadence of the background stabilize
	// round (successor verification + notify + one finger fixed).
	// Default 4.
	StabilizeEveryTicks int
	// IdleConnTicks is how long a server keeps an idle inbound
	// connection before closing it. Default 6000 (30s at 5ms ticks).
	IdleConnTicks int
	// ConsumePerTick is a host's compute capacity: task units consumed
	// per tick across all its virtual nodes (the paper's uniform-host
	// assumption; vary per host for the heterogeneous extension).
	// Default 1.
	ConsumePerTick int
	// DecisionEveryTicks is the strategy decision cadence (the paper's
	// DecisionEvery, §V-B). Default 5.
	DecisionEveryTicks int
	// ChurnProb is the per-decision probability that a host running the
	// induced-churn strategy leaves and rejoins under a fresh identifier
	// (the networked rendering of the simulator's per-tick churn rate).
	// Only StrategyChurn reads it. Default 0.05.
	ChurnProb float64
	// SybilThreshold is the residual workload at or below which a host
	// seeks work by injecting a Sybil. Default 0 (the paper's default).
	SybilThreshold uint64
	// InviteThreshold is the workload strictly above which a node using
	// the invitation strategy calls for help. The paper derives it as
	// twice the initial fair share; the networked runtime has no global
	// task count, so callers set it explicitly. Default 8.
	InviteThreshold uint64
	// MaxSybils caps Sybil identities per host. Default 8.
	MaxSybils int
	// ReportEveryTicks is the consume-report cadence to the collector.
	// Default 2.
	ReportEveryTicks int
	// DataDir is the base directory for the nodes' durable segment logs
	// (internal/store). Each node logs under DataDir/node-<id>; empty
	// means memory-backed stores (same semantics, no files, no
	// durability across process restarts).
	DataDir string
	// NoSync disables the fsync-on-acknowledge discipline for durable
	// stores. Writes still hit the log (a graceful close flushes them)
	// but a crash can lose acknowledged writes — only for benchmarks.
	NoSync bool
	// AntiEntropyEveryTicks is the replica anti-entropy cadence: every
	// so many ticks a node compares Merkle digests of its primary arc
	// with its replicas and reconciles the differences. Default 8.
	AntiEntropyEveryTicks int
	// ReadWorkUnits couples the read path to the balancing strategies:
	// every served TGet enqueues this many task units at the serving
	// node, so read pressure (a viral object under the streaming
	// workload, docs/STREAMING.md) registers as workload the paper's
	// strategies can shed — a node drowning in reads stops looking
	// "idle" to the Sybil triggers and starts looking overloaded to the
	// invitation threshold. Default 0: reads are free, exactly the
	// pre-streaming behavior.
	ReadWorkUnits uint64
	// PuzzleBits turns on puzzle-cost identity admission
	// (docs/ADVERSARY.md): every TJoin must carry a nonce solving the
	// adversary package's leading-zeros puzzle over the joiner's ID at
	// this difficulty, or the successor refuses admission. Honest nodes
	// (including balancing strategies minting Sybils) solve it
	// transparently on the join path; the knob's cost is exactly that
	// work. Default 0: admission is free.
	PuzzleBits int
	// DensityThreshold turns on the per-arc ID-density scan
	// (docs/ADVERSARY.md): during maintenance a node inspects its
	// successor-list view and sends TEvict to every identity inside a
	// window packed at least this many times tighter than uniform
	// placement predicts. Honest Sybil balancers are dense by design, so
	// low thresholds evict them too — HostStats.Evictions counts the
	// collateral. Default 0: no scanning.
	DensityThreshold float64
	// DensityWindow is the scan's window width in consecutive view
	// entries. Default 4 (half the default successor list, so a clean
	// majority of the view anchors the ring-size estimate).
	DensityWindow int
	// DensityEveryTicks is the scan cadence. Default 16.
	DensityEveryTicks int
}

// WithDefaults fills unset fields with the defaults above.
func (c Config) WithDefaults() Config {
	if c.TickEvery <= 0 {
		c.TickEvery = 5 * time.Millisecond
	}
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 8
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.MaxHops == 0 {
		c.MaxHops = 3 * ids.Bits
	}
	if c.RPCTimeoutTicks == 0 {
		c.RPCTimeoutTicks = 40
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBaseTicks == 0 {
		c.BackoffBaseTicks = 1
	}
	if c.StabilizeEveryTicks == 0 {
		c.StabilizeEveryTicks = 4
	}
	if c.IdleConnTicks == 0 {
		c.IdleConnTicks = 6000
	}
	if c.ConsumePerTick == 0 {
		c.ConsumePerTick = 1
	}
	if c.DecisionEveryTicks == 0 {
		c.DecisionEveryTicks = 5
	}
	if c.ChurnProb == 0 {
		c.ChurnProb = 0.05
	}
	if c.InviteThreshold == 0 {
		c.InviteThreshold = 8
	}
	if c.MaxSybils == 0 {
		c.MaxSybils = 8
	}
	if c.ReportEveryTicks == 0 {
		c.ReportEveryTicks = 2
	}
	if c.AntiEntropyEveryTicks == 0 {
		c.AntiEntropyEveryTicks = 8
	}
	if c.DensityWindow == 0 {
		c.DensityWindow = 4
	}
	if c.DensityEveryTicks == 0 {
		c.DensityEveryTicks = 16
	}
	return c
}

// rpcTimeout is the per-attempt deadline in wall time.
func (c Config) rpcTimeout() time.Duration {
	return time.Duration(c.RPCTimeoutTicks) * c.TickEvery
}

// Ticks converts a tick count to wall time under this config.
func (c Config) Ticks(n int) time.Duration {
	return time.Duration(n) * c.TickEvery
}
