package netchord

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
	"chordbalance/internal/wire"
)

// RPCStats counts client-side RPC activity for one pool.
type RPCStats struct {
	// Calls counts RPC attempts issued (first transmissions).
	Calls int64
	// Retries counts re-attempts after a failure or timeout.
	Retries int64
	// Timeouts counts RPCs abandoned after the retry budget.
	Timeouts int64
	// BackoffTicks accumulates tick-denominated backoff spent waiting
	// between retries.
	BackoffTicks int64
	// Reconnects counts fresh dials after a pooled conn was discarded.
	Reconnects int64
	// PartitionRefusals counts calls refused because the destination was
	// across an active partition.
	PartitionRefusals int64
}

// peerPool owns one node's client side: at most one pooled connection
// per peer address, request-id matching on each, reconnect-on-error,
// and the retry policy of internal/chord's transport (bounded retries
// with deterministic exponential backoff, denominated in ticks and
// scaled to wall time).
//
// A pooled connection carries one call at a time (a per-peer mutex
// serializes callers); any error — timeout, short read, decode failure
// — closes the connection so the next call starts on a fresh, framed
// stream rather than desynchronizing mid-frame.
type peerPool struct {
	tr    Transport
	cfg   Config
	nf    *NetFaults
	local func() ids.ID // the caller's current ring identity

	mu     sync.Mutex
	peers  map[string]*peer
	closed bool

	reqID uint64 // atomic

	calls, retries, timeouts, backoff, reconnects, refusals atomic.Int64
}

// peer is one pooled connection (possibly nil until first use).
type peer struct {
	mu   sync.Mutex
	conn net.Conn
}

func newPeerPool(tr Transport, cfg Config, nf *NetFaults, local func() ids.ID) *peerPool {
	return &peerPool{tr: tr, cfg: cfg, nf: nf, local: local, peers: make(map[string]*peer)}
}

// stats snapshots the pool's counters.
func (p *peerPool) stats() RPCStats {
	return RPCStats{
		Calls:             p.calls.Load(),
		Retries:           p.retries.Load(),
		Timeouts:          p.timeouts.Load(),
		BackoffTicks:      p.backoff.Load(),
		Reconnects:        p.reconnects.Load(),
		PartitionRefusals: p.refusals.Load(),
	}
}

// close tears down every pooled connection; later calls fail.
func (p *peerPool) close() {
	p.mu.Lock()
	p.closed = true
	addrs := make([]string, 0, len(p.peers))
	for a := range p.peers {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	peers := make([]*peer, 0, len(addrs))
	for _, a := range addrs {
		peers = append(peers, p.peers[a])
	}
	p.peers = make(map[string]*peer)
	p.mu.Unlock()
	for _, pr := range peers {
		pr.mu.Lock()
		if pr.conn != nil {
			_ = pr.conn.Close()
			pr.conn = nil
		}
		pr.mu.Unlock()
	}
}

// get returns (creating if needed) the peer record for addr.
func (p *peerPool) get(addr string) (*peer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	pr := p.peers[addr]
	if pr == nil {
		pr = &peer{}
		p.peers[addr] = pr
	}
	return pr, nil
}

// call performs one request/response RPC against ref, retrying up to
// MaxRetries times with tick-denominated exponential backoff. It fills
// m.Req; the reply is matched by request id (stale or duplicated
// replies from earlier attempts on the same stream are discarded).
func (p *peerPool) call(ref wire.NodeRef, m *wire.Msg) (*wire.Msg, error) {
	if ref.Addr == "" {
		return nil, fmt.Errorf("netchord: call %v: empty address", m.Type)
	}
	pr, err := p.get(ref.Addr)
	if err != nil {
		return nil, err
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()

	timeout := p.cfg.rpcTimeout()
	p.calls.Add(1)
	var lastErr error
	for attempt := 0; attempt <= p.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
			wait := faults.Backoff(p.cfg.BackoffBaseTicks, attempt)
			p.backoff.Add(int64(wait))
			//lint:ignore lockheld pr.mu IS the one-call-at-a-time serializer for this peer's pooled conn; backoff must hold it so a second caller cannot interleave frames mid-retry
			time.Sleep(p.cfg.Ticks(wait))
		}
		// A partition refusal is cheaper than a timeout and matches the
		// simulator's transport semantics; the retry loop still runs so
		// a healing partition lets later attempts through.
		if p.nf != nil && !p.nf.SameSide(p.local(), ref.ID) {
			p.nf.refused()
			p.refusals.Add(1)
			lastErr = ErrPartitioned
			continue
		}
		//lint:ignore lockheld pr.mu serializes RPCs on the pooled conn by design: the lock is per-peer, taken only here and in tryOnce/close, and never by anything attempt's I/O waits on
		reply, err := p.attempt(pr, ref, m, timeout)
		if err == nil {
			return reply, nil
		}
		if errors.Is(err, ErrRemote) {
			// The peer answered authoritatively (a well-framed TError);
			// retrying the same request cannot change its mind.
			return nil, err
		}
		lastErr = err
	}
	p.timeouts.Add(1)
	if lastErr == nil {
		lastErr = ErrTimeout
	}
	return nil, fmt.Errorf("%w (%v to %s: %v)", ErrTimeout, m.Type, ref.Addr, lastErr)
}

// tryOnce performs a single-attempt RPC: no retries, no backoff. It is
// the cheap probe behind graveyard revival checks and gift resolution,
// where failure is the expected case and a full retry ladder would
// stall the maintenance loop.
func (p *peerPool) tryOnce(ref wire.NodeRef, m *wire.Msg) error {
	if ref.Addr == "" {
		return fmt.Errorf("netchord: probe %v: empty address", m.Type)
	}
	if p.nf != nil && !p.nf.SameSide(p.local(), ref.ID) {
		p.nf.refused()
		p.refusals.Add(1)
		return ErrPartitioned
	}
	pr, err := p.get(ref.Addr)
	if err != nil {
		return err
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	p.calls.Add(1)
	//lint:ignore lockheld pr.mu serializes RPCs on the pooled conn by design (see call); a probe holding it only delays other callers to the same peer, never a lock attempt's I/O depends on
	_, err = p.attempt(pr, ref, m, p.cfg.rpcTimeout())
	return err
}

// attempt runs one transmission: ensure a connection, write the
// request, read until the matching reply or the deadline. Any error
// discards the pooled connection.
func (p *peerPool) attempt(pr *peer, ref wire.NodeRef, m *wire.Msg, timeout time.Duration) (*wire.Msg, error) {
	conn := pr.conn
	if conn == nil {
		raw, err := p.tr.Dial(ref.Addr, timeout)
		if err != nil {
			return nil, err
		}
		conn = p.nf.Wrap(raw, p.local(), ref.ID)
		pr.conn = conn
		p.reconnects.Add(1)
	}
	drop := func() {
		_ = conn.Close()
		pr.conn = nil
	}
	m.Req = atomic.AddUint64(&p.reqID, 1)
	deadline := time.Now().Add(timeout)
	if err := conn.SetWriteDeadline(deadline); err != nil {
		drop()
		return nil, err
	}
	if err := wire.WriteMsg(conn, m); err != nil {
		drop()
		return nil, err
	}
	if err := conn.SetReadDeadline(deadline); err != nil {
		drop()
		return nil, err
	}
	for {
		reply, err := wire.ReadMsg(conn)
		if err != nil {
			drop()
			return nil, err
		}
		if reply.Req != m.Req {
			continue // stale or duplicated reply from an earlier attempt
		}
		if reply.Type == wire.TError {
			return nil, fmt.Errorf("%w: %s (code %d)", ErrRemote, reply.Text, reply.A)
		}
		return reply, nil
	}
}
