package netchord

// The live half of the sybilwar co-simulation (docs/ADVERSARY.md): an
// AttackHost drives an adversary.Attacker against a real cluster over
// real sockets. Where the simulator charges abstract work units, the
// attacker here pays the actual admission price — its mints go through
// the same Node.Join path as every honest identity, solving the real
// SHA-1 puzzle when PuzzleBits is set — and the density defense reaches
// it over the wire as TEvict notices, which it answers the only way an
// adversary would: free the budget and mint a fresh clustered ID.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"chordbalance/internal/adversary"
	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

// AttackStats snapshots the attack host's accounting.
type AttackStats struct {
	// Minted counts hostile identities successfully placed on the ring;
	// Live is how many are placed right now.
	Minted, Live int
	// Evicted counts hostile identities the defense removed (each one
	// frees budget for a re-mint unless NoReMint is set).
	Evicted int
	// Blocked counts mint attempts that failed admission — a refused or
	// unreachable join, an occupied ID — without spending budget.
	Blocked int
	// WorkBalance is the unspent work budget.
	WorkBalance int
}

// AttackHost is one adversary machine on the networked runtime: a mint
// loop paced like an honest host's tick loop, a budget of hostile
// identities clustered inside the attacker's target arc, and the
// churn-exploiting re-mint response to eviction. It deliberately does
// NOT run the honest Host's consume/report/decide machinery — hostile
// identities squat on their arcs, absorbing key ownership while doing
// no work, which is exactly what makes an eclipse a blackhole.
type AttackHost struct {
	cfg      Config
	tr       Transport
	nf       *NetFaults
	joinAddr string

	mu      sync.Mutex
	att     *adversary.Attacker
	rng     *xrand.Rand
	nodes   []*Node
	tick    int
	blocked int
	down    bool

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// NewAttackHost validates the attack config and builds a stopped
// attacker that will join hostile identities through joinAddr. Call
// Start to begin minting. nf may be nil (no faults).
func NewAttackHost(cfg Config, tr Transport, nf *NetFaults, ac adversary.AttackConfig, seed uint64, joinAddr string) (*AttackHost, error) {
	att, err := adversary.NewAttacker(ac)
	if err != nil {
		return nil, fmt.Errorf("netchord: attack host: %w", err)
	}
	if joinAddr == "" {
		return nil, fmt.Errorf("netchord: attack host: empty join address")
	}
	return &AttackHost{
		cfg:      cfg.WithDefaults(),
		tr:       tr,
		nf:       nf,
		joinAddr: joinAddr,
		att:      att,
		rng:      xrand.New(seed ^ 0x7c159e3779b94a05),
		closed:   make(chan struct{}),
	}, nil
}

// Start launches the mint loop.
func (a *AttackHost) Start() {
	a.wg.Add(1)
	go a.loop()
}

// Close stops the mint loop and shuts down every hostile node.
func (a *AttackHost) Close() {
	a.closeOnce.Do(func() { close(a.closed) })
	a.mu.Lock()
	a.down = true
	a.mu.Unlock()
	a.wg.Wait()
	a.mu.Lock()
	nodes := a.nodes
	a.nodes = nil
	a.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
}

// Nodes returns the currently placed hostile nodes.
func (a *AttackHost) Nodes() []*Node {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*Node(nil), a.nodes...)
}

// Target returns the attacked arc [lo, hi).
func (a *AttackHost) Target() (lo, hi ids.ID) { return a.att.Target() }

// Stats snapshots the attacker's accounting.
func (a *AttackHost) Stats() AttackStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AttackStats{
		Minted:      a.att.MintCount(),
		Live:        a.att.Live(),
		Evicted:     a.att.EvictCount(),
		Blocked:     a.blocked,
		WorkBalance: a.att.WorkBalance(),
	}
}

// loop is the attacker's heartbeat: accrue work every tick, attempt one
// mint every MintEvery ticks while budget and work allow.
func (a *AttackHost) loop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.cfg.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-a.closed:
			return
		case <-ticker.C:
			a.step()
		}
	}
}

// step runs one tick: accrue, then mint if the cadence, the identity
// budget, and the work balance all allow. The admission cost is 1 plus
// the ring's puzzle cost — the same price every honest join pays — and
// is only spent on success: a refused join (bad luck on an occupied ID,
// an unreachable successor) is blocked, not bought.
func (a *AttackHost) step() {
	cost := 1 + adversary.PuzzleCost(a.cfg.PuzzleBits)
	a.mu.Lock()
	a.att.Accrue()
	a.tick++
	mint := a.tick%a.att.Config().MintEvery == 0 && a.att.CanMint(cost) && !a.down
	var id ids.ID
	if mint {
		id = a.att.MintID(a.rng)
	}
	a.mu.Unlock()
	if !mint {
		return
	}
	n, err := NewNode(a.cfg, a.tr, a.nf, id, "")
	if err != nil {
		a.noteBlocked()
		return
	}
	n.ev = a
	// Join solves the real admission puzzle on the shared honest path:
	// the attacker's CPU pays exactly what a defender's PuzzleBits
	// demands, per identity.
	if err := n.Join(a.joinAddr); err != nil {
		n.Close()
		a.noteBlocked()
		return
	}
	n.Start()
	a.mu.Lock()
	if a.down {
		a.mu.Unlock()
		n.Close()
		return
	}
	a.nodes = append(a.nodes, n)
	a.att.Minted(cost)
	a.mu.Unlock()
}

// noteBlocked records a failed mint attempt.
func (a *AttackHost) noteBlocked() {
	a.mu.Lock()
	a.blocked++
	a.mu.Unlock()
}

// considerEvict is the adversary's response to a density eviction
// notice: comply with the departure — the runtime's honest majority
// would stop routing to the identity anyway — but treat it purely as
// freed budget, letting the next mint cadence place a replacement
// (adversary.Attacker's churn exploit). With NoReMint set the freed
// budget is burned instead and the attack decays.
func (a *AttackHost) considerEvict(n *Node) {
	a.mu.Lock()
	idx := -1
	for i, h := range a.nodes {
		if h == n {
			idx = i
			break
		}
	}
	if idx < 0 || a.down {
		a.mu.Unlock()
		return // stale notice or shutdown race
	}
	a.nodes = append(a.nodes[:idx], a.nodes[idx+1:]...)
	a.att.Evicted()
	a.wg.Add(1)
	a.mu.Unlock()
	go func() {
		defer a.wg.Done()
		_ = n.Leave()
	}()
}

// MeasureEclipse is the live runtime's eclipse oracle: it merges the
// honest and hostile node sets into a ring order array and returns the
// fraction of the arc [lo, hi) whose full replica set is hostile
// (adversary.EclipsedFraction). It reads true membership from the test
// harness's vantage point, not any node's partial view — an oracle for
// experiments and tests, not a protocol facility.
func MeasureEclipse(honest, hostile []*Node, lo, hi ids.ID, replicas int) float64 {
	type member struct {
		id      ids.ID
		hostile bool
	}
	members := make([]member, 0, len(honest)+len(hostile))
	for _, n := range honest {
		members = append(members, member{n.ID(), false})
	}
	for _, n := range hostile {
		members = append(members, member{n.ID(), true})
	}
	if len(members) == 0 {
		return 0
	}
	sort.Slice(members, func(i, j int) bool { return members[i].id.Less(members[j].id) })
	return adversary.EclipsedFraction(len(members),
		func(i int) ids.ID { return members[i].id },
		func(i int) bool { return members[i].hostile },
		lo, hi, replicas)
}
