package netchord

import (
	"encoding/binary"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chordbalance/internal/adversary"
	"chordbalance/internal/ids"
	"chordbalance/internal/store"
	"chordbalance/internal/wire"
)

// evictor reacts to a density-defense eviction notice (wire.TEvict)
// addressed to one of its nodes. The Host implementation retires the
// identity — re-keying a primary through induced churn, retiring a
// Sybil gracefully — while the AttackHost implementation feeds the
// notice into the attacker's re-mint loop. Set alongside the node's
// owner before Start, like the host pointer.
type evictor interface {
	considerEvict(n *Node)
}

// joinGift is the data copy and task handoff computed for one joiner,
// kept until the joiner's first notify confirms receipt so a retried
// TJoin (lost reply) re-sends the identical gift. Gifts unconfirmed
// past the client's whole retry budget are resolved by restoreGifts:
// reachable joiner means the gift arrived (drop the stash), dead joiner
// means the handshake died (take the task units back).
type joinGift struct {
	ref   wire.NodeRef
	recs  []wire.Rec
	tasks []wire.Task
	born  time.Time
}

// maxSeenTokens bounds the idempotency-token memory per node.
const maxSeenTokens = 4096

// maxJoinHandoffs bounds unconfirmed join gifts kept per node.
const maxJoinHandoffs = 64

// maxLostPeers bounds the graveyard of pruned peers kept for ring
// re-merge probing after a partition heals.
const maxLostPeers = 16

// tokenCounter feeds newToken; process-global so tokens stay unique
// even across a host's churning identities.
var tokenCounter atomic.Uint64

// TError codes carried in TError.A.
const (
	// CodeBadRequest means the request was malformed for its type.
	CodeBadRequest = 1
	// CodeNoRoute means the callee could not route the request.
	CodeNoRoute = 2
	// CodeShutdown means the callee is closing.
	CodeShutdown = 3
	// CodeUnavailable means the callee could not meet the durability
	// contract right now (not enough reachable replicas); the caller
	// should re-resolve the owner and retry.
	CodeUnavailable = 4
)

// putVersionAttempts bounds the owner's version-bump retry loop: when a
// replica acknowledges a TReplicate with a higher current version than
// the one pushed (a stale higher history is shadowing the fresh write),
// the owner re-appends the value above that version and pushes again.
const putVersionAttempts = 4

// Node is one networked Chord participant: a wire-protocol server on
// its own listener, a client connection pool, and a background
// maintenance loop (stabilize, notify, successor-list refresh, round-
// robin finger repair) paced by Config.TickEvery.
//
// A Node is safe for concurrent use: the server handles each inbound
// connection on its own goroutine, and all protocol state (predecessor,
// successor list, fingers, tasks) sits behind one mutex; key/value data
// lives in the node's store.Store, which does its own locking. RPC
// handlers never block on the network while holding the mutex, so
// request cycles between nodes cannot deadlock. The TPut handler does
// block on its replica round trips — without holding any lock — because
// the durability contract is exactly "acknowledged means replicated".
type Node struct {
	cfg  Config
	tr   Transport
	nf   *NetFaults
	host *Host   // nil for standalone nodes
	ev   evictor // eviction-notice owner; nil ignores TEvict
	ref  wire.NodeRef

	// st is the node's durable storage engine: an append-only segment
	// log (or its memory-backed twin when Config.DataDir is empty) with
	// last-writer-wins versioning and Merkle arc digests.
	st *store.Store

	pool *peerPool
	ln   net.Listener

	mu         sync.Mutex
	pred       wire.NodeRef
	hasPred    bool
	succ       []wire.NodeRef // nearest first; empty only before bootstrap
	fingers    []wire.NodeRef // fingers[i] caches successor(id + 2^i)
	nextFinger int
	tasks      map[ids.ID]uint64
	taskUnits  uint64
	everTasked bool

	// At-least-once defenses: the RPC layer retries after lost replies,
	// so task-bearing messages must be exactly-once at the application
	// layer. seenTokens remembers recently applied TTask/TTransfer
	// idempotency tokens (FIFO-evicted); joinHandoff stashes the
	// data/task gift computed for a joiner so a retried TJoin re-sends
	// the same gift instead of finding the tasks already deleted
	// (cleared by the joiner's first TNotify).
	seenTokens  map[uint64]struct{}
	tokenOrder  []uint64
	joinHandoff map[ids.ID]*joinGift
	joinOrder   []ids.ID

	// leaving is set the moment Leave snapshots the node's state; from
	// then on task-bearing requests are refused with CodeShutdown, so no
	// work can slip into a node that has already counted itself out (the
	// sender re-routes to the successor instead).
	leaving bool

	// lost is the graveyard: peers pruned as unreachable (dead successor
	// heads, unresponsive predecessors). probeLost revisits them because
	// after a partition the two sides each converge to a self-consistent
	// ring, and Chord stabilization alone can never merge two such rings
	// — every pointer on each side is internally valid. One revived
	// graveyard entry is enough to re-link them.
	lost     []wire.NodeRef
	lostNext int

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup

	served      [wire.TypeCount]atomic.Int64
	lookups     atomic.Int64
	lookupFails atomic.Int64
	stabilizes  atomic.Int64
	replicaErrs atomic.Int64
	acked       atomic.Int64
	antiRounds  atomic.Int64
	antiPushed  atomic.Int64
	antiPulled  atomic.Int64
	antiBytes   atomic.Int64
	evictsSent  atomic.Int64
}

// NewNode opens a listener on addr (or an auto-assigned one when addr
// is empty) and returns a stopped node with identity id. Call Create or
// Join, then Start, to bring it onto a ring. nf may be nil (no faults).
//
// When cfg.DataDir is set the node opens (or reopens) its segment log
// at DataDir/node-<id>: a node restarted under the same identity and
// data directory replays its log and rejoins with its pre-crash keys.
func NewNode(cfg Config, tr Transport, nf *NetFaults, id ids.ID, addr string) (*Node, error) {
	cfg = cfg.WithDefaults()
	dir := ""
	if cfg.DataDir != "" {
		dir = filepath.Join(cfg.DataDir, "node-"+id.String())
	}
	st, err := store.Open(dir, store.Options{SyncWrites: !cfg.NoSync})
	if err != nil {
		return nil, fmt.Errorf("netchord: opening store: %w", err)
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		_ = st.Close()
		return nil, err
	}
	n := &Node{
		cfg:         cfg,
		tr:          tr,
		nf:          nf,
		ref:         wire.NodeRef{ID: id, Addr: ln.Addr().String()},
		st:          st,
		ln:          ln,
		fingers:     make([]wire.NodeRef, ids.Bits),
		tasks:       make(map[ids.ID]uint64),
		seenTokens:  make(map[uint64]struct{}),
		joinHandoff: make(map[ids.ID]*joinGift),
		conns:       make(map[net.Conn]struct{}),
		closed:      make(chan struct{}),
	}
	n.pool = newPeerPool(tr, cfg, nf, func() ids.ID { return id })
	return n, nil
}

// Ref returns the node's identity and listen address.
func (n *Node) Ref() wire.NodeRef { return n.ref }

// ID returns the node's ring identifier.
func (n *Node) ID() ids.ID { return n.ref.ID }

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ref.Addr }

// Create bootstraps a one-node ring: the node is its own successor and
// predecessor, exactly as in the Chord paper's create().
func (n *Node) Create() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.succ = []wire.NodeRef{n.ref}
	n.pred = n.ref
	n.hasPred = true
}

// Join brings the node onto the ring reachable through via: resolve the
// node's successor with an iterative lookup starting at via, then run
// the join handshake, acquiring the data and task units the node is now
// responsible for. The background loops (started by Start) disseminate
// the change from there.
func (n *Node) Join(via string) error {
	boot := wire.NodeRef{Addr: via}
	succ, _, err := n.lookupFrom(boot, n.ref.ID)
	if err != nil {
		return fmt.Errorf("netchord: join lookup via %s: %w", via, err)
	}
	if succ.ID == n.ref.ID && succ.Addr != n.ref.Addr {
		return fmt.Errorf("netchord: join: id %s already on the ring", n.ref.ID.Short())
	}
	// Admission cost: with puzzles on, every identity — honest joiner,
	// strategy-minted Sybil, or attacker — pays the same work here.
	nonce := adversary.SolvePuzzle(n.ref.ID, n.cfg.PuzzleBits)
	reply, err := n.pool.call(succ, &wire.Msg{Type: wire.TJoin, From: n.ref, A: nonce})
	if err != nil {
		return fmt.Errorf("netchord: join handshake: %w", err)
	}
	n.mu.Lock()
	list := append([]wire.NodeRef{succ}, reply.List...)
	n.succ = dedupeRefs(list, n.ref.ID, n.cfg.SuccessorListLen)
	for _, tk := range reply.Tasks {
		n.addTaskLocked(tk.Key, tk.Units)
	}
	n.mu.Unlock()
	if _, err := n.st.ApplyAll(storeRecs(reply.Recs)); err != nil {
		return fmt.Errorf("netchord: join: applying gift: %w", err)
	}
	// One eager stabilize round links us in without waiting a tick.
	n.stabilizeOnce()
	return nil
}

// Start launches the server accept loop and the background maintenance
// loop. It panics if the node is already closed.
func (n *Node) Start() {
	select {
	case <-n.closed:
		panic("netchord: Start after Close")
	default:
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.maintenanceLoop()
}

// Close shuts the node down: listener, inbound connections, pooled
// client connections, background loops, and the store. It does not hand
// keys off (that is Leave); Close models a crash-stop or process exit,
// so the segment log directory is kept — a node restarted under the
// same identity and DataDir replays it.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.closed)
		_ = n.ln.Close()
		n.connMu.Lock()
		for c := range n.conns {
			_ = c.Close()
		}
		n.connMu.Unlock()
		n.pool.close()
	})
	n.wg.Wait()
	_ = n.st.Close()
}

// Leave departs gracefully: mark the node as leaving (so no new work
// can arrive after the snapshot), move every key and task unit to the
// first reachable successor, then Close. The snapshot is a move, not a
// copy — once taken, the units exist only in the outbound transfer, so
// they can be consumed locally xor handed off, never both.
func (n *Node) Leave() error {
	_, _, err := n.leaveRemainder()
	return err
}

// leaveRemainder is Leave returning whatever could not be delivered to
// any successor. A churning host (leave + rejoin) re-owns the leftovers
// under its next identity instead of dropping them, which is what keeps
// work conserved even when every transfer target is itself mid-leave.
// On return the node's store is destroyed: ownership of every record
// has moved into the transfer (or the returned remainder), so keeping
// the log would only resurrect stale replicas on an identity reuse.
func (n *Node) leaveRemainder() ([]wire.Rec, []wire.Task, error) {
	n.mu.Lock()
	n.leaving = true
	tasks := make([]wire.Task, 0, len(n.tasks))
	for _, k := range sortedTaskKeys(n.tasks) {
		tasks = append(tasks, wire.Task{Key: k, Units: n.tasks[k]})
	}
	// Any gift still unconfirmed leaves with us: fold it into the
	// handoff so a vanished joiner cannot take the units to the grave.
	for _, id := range n.joinOrder {
		if g := n.joinHandoff[id]; g != nil {
			tasks = append(tasks, g.tasks...)
		}
	}
	n.joinHandoff = make(map[ids.ID]*joinGift)
	n.joinOrder = nil
	n.tasks = make(map[ids.ID]uint64)
	n.taskUnits = 0
	succs := append([]wire.NodeRef(nil), n.succ...)
	n.mu.Unlock()
	// The leaving flag is set, so no new writes can land after this
	// snapshot: the store's contents move with us, versions intact, and
	// the receiver merges them last-writer-wins.
	arc, err := n.st.ArcRecs(ids.Zero, ids.Zero, 1<<30)
	if err != nil {
		n.Close()
		return nil, tasks, err
	}
	recs := wireRecs(arc)

	for _, s := range succs {
		if s.ID == n.ref.ID {
			continue
		}
		if len(recs) == 0 && len(tasks) == 0 {
			break
		}
		// Chunk the handoff under the wire caps; successfully delivered
		// chunks are not re-sent when the next successor is tried.
		if recs, tasks, err = n.transferTo(s, recs, tasks); err == nil {
			break
		}
	}
	n.Close()
	_ = n.st.Destroy()
	return recs, tasks, err
}

// transferTo pushes recs and tasks to ref in wire-sized chunks, each
// chunk carrying a fresh idempotency token so retried chunks are never
// double-applied. It returns whatever was not acknowledged, so a caller
// falling back to another successor resumes instead of restarting.
func (n *Node) transferTo(ref wire.NodeRef, recs []wire.Rec, tasks []wire.Task) ([]wire.Rec, []wire.Task, error) {
	for len(recs) > 0 || len(tasks) > 0 {
		m := &wire.Msg{Type: wire.TTransfer, A: n.newToken()}
		var restRecs []wire.Rec
		m.Recs, restRecs = splitRecChunk(recs)
		var restTasks []wire.Task
		if len(tasks) > wire.MaxTasks {
			m.Tasks, restTasks = tasks[:wire.MaxTasks], tasks[wire.MaxTasks:]
		} else {
			m.Tasks, restTasks = tasks, nil
		}
		if _, err := n.pool.call(ref, m); err != nil {
			return recs, tasks, err
		}
		recs, tasks = restRecs, restTasks
	}
	return nil, nil, nil
}

// --- accessors -------------------------------------------------------

// Successor returns the working successor (self on a one-node ring).
func (n *Node) Successor() wire.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succ) == 0 {
		return n.ref
	}
	return n.succ[0]
}

// SuccessorList returns a copy of the successor list.
func (n *Node) SuccessorList() []wire.NodeRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]wire.NodeRef(nil), n.succ...)
}

// Predecessor returns the predecessor pointer and whether it is set.
func (n *Node) Predecessor() (wire.NodeRef, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred, n.hasPred
}

// KeyCount returns how many keys (primary + replica) the node stores.
func (n *Node) KeyCount() int { return n.st.Len() }

// Store returns the node's storage engine (for stats and tests; the
// protocol paths go through the node's own methods).
func (n *Node) Store() *store.Store { return n.st }

// TaskUnits returns the node's residual work, in units.
func (n *Node) TaskUnits() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.taskUnits
}

// NodeStats snapshots one node's protocol activity: requests served by
// type, client-side lookup and maintenance counters, and the RPC pool's
// retry/timeout accounting.
type NodeStats struct {
	// Served counts requests handled, indexed by wire.Type.
	Served [wire.TypeCount]int64
	// Lookups and LookupFails count client lookups started and failed.
	Lookups, LookupFails int64
	// Stabilizes counts stabilization rounds run.
	Stabilizes int64
	// ReplicaErrs counts failed replica pushes (repaired later).
	ReplicaErrs int64
	// Acked counts durably acknowledged writes this node owned.
	Acked int64
	// AntiEntropyRounds counts per-replica anti-entropy syncs run;
	// AntiEntropyPushed and AntiEntropyPulled count records repaired in
	// each direction; AntiEntropyBytes counts value bytes moved.
	AntiEntropyRounds, AntiEntropyPushed, AntiEntropyPulled, AntiEntropyBytes int64
	// EvictsSent counts density-scan eviction notices this node sent;
	// notices received are Served[wire.TEvict].
	EvictsSent int64
	// Store is the storage engine's counters.
	Store store.Stats
	// RPC is the client pool's counters.
	RPC RPCStats
}

// Stats snapshots the node's counters.
func (n *Node) Stats() NodeStats {
	s := NodeStats{
		Lookups:           n.lookups.Load(),
		LookupFails:       n.lookupFails.Load(),
		Stabilizes:        n.stabilizes.Load(),
		ReplicaErrs:       n.replicaErrs.Load(),
		Acked:             n.acked.Load(),
		AntiEntropyRounds: n.antiRounds.Load(),
		AntiEntropyPushed: n.antiPushed.Load(),
		AntiEntropyPulled: n.antiPulled.Load(),
		AntiEntropyBytes:  n.antiBytes.Load(),
		EvictsSent:        n.evictsSent.Load(),
		Store:             n.st.Stats(),
		RPC:               n.pool.stats(),
	}
	for i := range s.Served {
		s.Served[i] = n.served[i].Load()
	}
	return s
}

// newToken returns a nonzero idempotency token, unique within the
// process and salted with this node's identity so tokens from distinct
// senders cannot collide in a receiver's dedup window.
func (n *Node) newToken() uint64 {
	tok := binary.BigEndian.Uint64(n.ref.ID[:8]) ^ (tokenCounter.Add(1) << 20)
	if tok == 0 {
		tok = 1
	}
	return tok
}

// applyTokenLocked records tok and reports whether the carrying message
// should be applied (false = duplicate of an already-applied transfer).
// Token 0 always applies. Callers hold n.mu.
func (n *Node) applyTokenLocked(tok uint64) bool {
	if tok == 0 {
		return true
	}
	if _, dup := n.seenTokens[tok]; dup {
		return false
	}
	n.seenTokens[tok] = struct{}{}
	n.tokenOrder = append(n.tokenOrder, tok)
	if len(n.tokenOrder) > maxSeenTokens {
		delete(n.seenTokens, n.tokenOrder[0])
		n.tokenOrder = n.tokenOrder[1:]
	}
	return true
}

// addTaskLocked merges units of work under key; callers hold n.mu.
func (n *Node) addTaskLocked(key ids.ID, units uint64) {
	if units == 0 {
		return
	}
	n.tasks[key] += units
	n.taskUnits += units
	n.everTasked = true
}

// consume drains up to budget task units in ascending key order and
// returns how many were consumed.
func (n *Node) consume(budget uint64) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if budget == 0 || n.taskUnits == 0 {
		return 0
	}
	var done uint64
	for _, k := range sortedTaskKeys(n.tasks) {
		if budget == 0 {
			break
		}
		take := n.tasks[k]
		if take > budget {
			take = budget
		}
		n.tasks[k] -= take
		if n.tasks[k] == 0 {
			delete(n.tasks, k)
		}
		budget -= take
		done += take
	}
	n.taskUnits -= done
	return done
}

// --- client operations ----------------------------------------------

// Lookup resolves the node responsible for key, returning its ref and
// the number of routing round trips taken.
func (n *Node) Lookup(key ids.ID) (wire.NodeRef, int, error) {
	n.lookups.Add(1)
	owner, hops, err := n.lookupFrom(n.ref, key)
	if err != nil {
		n.lookupFails.Add(1)
	}
	return owner, hops, err
}

// lookupFrom runs the iterative lookup starting at start. Each step is
// one TFindSuccessor round trip; the answering node also returns its
// successor list as fallback candidates, so a next hop that died since
// being cached is routed around by stepping to the closest fallback —
// the successor-list walk that makes Chord lookups survive stale
// fingers.
func (n *Node) lookupFrom(start wire.NodeRef, key ids.ID) (wire.NodeRef, int, error) {
	cur := start
	var fallbacks []wire.NodeRef
	hops := 0
	for hops <= n.cfg.MaxHops {
		var done bool
		var next wire.NodeRef
		var list []wire.NodeRef
		var err error
		if cur.Addr == n.ref.Addr {
			done, next, list = n.routeStep(key)
		} else {
			var reply *wire.Msg
			reply, err = n.pool.call(cur, &wire.Msg{Type: wire.TFindSuccessor, Key: key, A: uint64(hops)})
			if err == nil {
				done, next, list = reply.Flag, reply.Node, reply.List
			}
		}
		if err != nil {
			if len(fallbacks) == 0 {
				return wire.NodeRef{}, hops, err
			}
			cur, fallbacks = fallbacks[0], fallbacks[1:]
			hops++
			continue
		}
		if done {
			return next, hops, nil
		}
		// Keep the answerer's successor list (minus the chosen hop) as
		// fallbacks in case next is unreachable.
		fallbacks = fallbacks[:0]
		for _, r := range list {
			if r.ID != next.ID && r.Addr != "" {
				fallbacks = append(fallbacks, r)
			}
		}
		cur = next
		hops++
	}
	return wire.NodeRef{}, hops, ErrNoRoute
}

// routeStep answers one routing step locally: done=true when the
// node's immediate successor owns key; otherwise the closest preceding
// candidate plus the successor list as fallbacks.
func (n *Node) routeStep(key ids.ID) (done bool, next wire.NodeRef, list []wire.NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	succ := n.ref
	if len(n.succ) > 0 {
		succ = n.succ[0]
	}
	if succ.ID == n.ref.ID || ids.BetweenRightIncl(key, n.ref.ID, succ.ID) {
		return true, succ, nil
	}
	next = n.closestPrecedingLocked(key)
	if next.ID == n.ref.ID {
		next = succ
	}
	return false, next, append([]wire.NodeRef(nil), n.succ...)
}

// closestPrecedingLocked scans fingers farthest-first, then the
// successor list, for the candidate most closely preceding key;
// callers hold n.mu.
func (n *Node) closestPrecedingLocked(key ids.ID) wire.NodeRef {
	for i := ids.Bits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f.Addr == "" || f.ID == n.ref.ID {
			continue
		}
		if ids.Between(f.ID, n.ref.ID, key) {
			return f
		}
	}
	best := n.ref
	for _, s := range n.succ {
		if ids.Between(s.ID, n.ref.ID, key) {
			best = s // nearest-first: the last match is closest to key
		}
	}
	return best
}

// rerouteAttempts bounds how many times a client re-resolves a key's
// owner after an authoritative refusal (a node mid-leave answers
// CodeShutdown; the ring needs a beat to route around it).
const rerouteAttempts = 5

// Put stores value under key at its owner, which acknowledges only
// after the record is durable locally and at the owner's replica
// quorum (Config.Replicas copies in total, successor list permitting).
// Storing a key is idempotent, so every failure — an owner that refuses
// because it is leaving, an owner that died mid-call — is handled the
// same way: wait a stabilization beat, resolve the owner again, and
// re-send.
func (n *Node) Put(key ids.ID, value []byte) error {
	_, err := n.PutVer(key, value)
	return err
}

// PutVer is Put returning the version the write was acknowledged at.
func (n *Node) PutVer(key ids.ID, value []byte) (uint64, error) {
	var err error
	for attempt := 0; attempt < rerouteAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(n.cfg.Ticks(n.cfg.StabilizeEveryTicks))
		}
		var owner wire.NodeRef
		owner, _, err = n.Lookup(key)
		if err != nil {
			continue
		}
		if owner.Addr == n.ref.Addr {
			var ver uint64
			if ver, err = n.putDurable(key, value); err == nil {
				return ver, nil
			}
			continue
		}
		var reply *wire.Msg
		if reply, err = n.pool.call(owner, &wire.Msg{Type: wire.TPut, Key: key, Value: value}); err == nil {
			return reply.A, nil
		}
	}
	return 0, err
}

// Get fetches the value for key from its owner.
func (n *Node) Get(key ids.ID) ([]byte, error) {
	v, _, err := n.GetVer(key)
	return v, err
}

// GetVer is Get returning the version the owner served.
func (n *Node) GetVer(key ids.ID) ([]byte, uint64, error) {
	owner, _, err := n.Lookup(key)
	if err != nil {
		return nil, 0, err
	}
	if owner.Addr == n.ref.Addr {
		v, ver, ok, err := n.st.Get(key)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, 0, ErrNotFound
		}
		return v, ver, nil
	}
	reply, err := n.pool.call(owner, &wire.Msg{Type: wire.TGet, Key: key})
	if err != nil {
		return nil, 0, err
	}
	if !reply.Flag {
		return nil, 0, ErrNotFound
	}
	return reply.Value, reply.A, nil
}

// SubmitTask routes units of work under key to its owner. The same
// idempotency token is reused across every re-route, so even if a
// timed-out attempt secretly landed before the owner died, the units
// are applied at most once — re-submission after any failure is safe.
func (n *Node) SubmitTask(key ids.ID, units uint64) error {
	tok := n.newToken()
	var err error
	for attempt := 0; attempt < rerouteAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(n.cfg.Ticks(n.cfg.StabilizeEveryTicks))
		}
		var owner wire.NodeRef
		owner, _, err = n.Lookup(key)
		if err != nil {
			continue
		}
		if owner.Addr == n.ref.Addr {
			n.mu.Lock()
			if n.applyTokenLocked(tok) {
				n.addTaskLocked(key, units)
			}
			n.mu.Unlock()
			return nil
		}
		if _, err = n.pool.call(owner, &wire.Msg{Type: wire.TTask, Key: key, A: units, B: tok}); err == nil {
			return nil
		}
	}
	return err
}

// Ping round-trips a TPing to ref.
func (n *Node) Ping(ref wire.NodeRef) error {
	_, err := n.pool.call(ref, &wire.Msg{Type: wire.TPing})
	return err
}

// WorkloadOf queries ref's residual task units.
func (n *Node) WorkloadOf(ref wire.NodeRef) (uint64, error) {
	reply, err := n.pool.call(ref, &wire.Msg{Type: wire.TWorkloadQuery})
	if err != nil {
		return 0, err
	}
	return reply.A, nil
}

// putDurable runs the owner's write path: append (and fsync) locally,
// push the record to Replicas-1 distinct successors, and acknowledge
// only once every required copy has confirmed durability. A replica
// whose TAck carries a higher current version than the one pushed is
// shadowing the fresh write with older high-versioned history (a stale
// log reopened under a reused identity, say); the owner then re-appends
// the value above that version and pushes again, so an acknowledged
// write is never silently lost to version arithmetic.
func (n *Node) putDurable(key ids.ID, value []byte) (uint64, error) {
	n.mu.Lock()
	leaving := n.leaving
	n.mu.Unlock()
	if leaving {
		return 0, fmt.Errorf("%w: node is leaving", ErrClosed)
	}
	minVer := uint64(0)
	var ver uint64
	for attempt := 0; attempt < putVersionAttempts; attempt++ {
		var err error
		ver, err = n.st.PutAtLeast(key, minVer, value)
		if err != nil {
			return 0, err
		}
		maxPeer, err := n.pushReplicas(key, ver, value)
		if err != nil {
			return 0, err
		}
		if maxPeer <= ver {
			n.acked.Add(1)
			if n.host != nil {
				n.host.stAcked.Add(1)
			}
			return ver, nil
		}
		minVer = maxPeer + 1
	}
	return 0, fmt.Errorf("netchord: put %s: version chase exceeded %d attempts", key.Short(), putVersionAttempts)
}

// pushReplicas pushes one record to the first Replicas-1 distinct
// successors, walking further down the list when a push fails so the
// quorum survives individual dead successors. It returns the highest
// current version any replica reported, and an error when fewer than
// the required number of replicas acknowledged.
func (n *Node) pushReplicas(key ids.ID, ver uint64, value []byte) (uint64, error) {
	n.mu.Lock()
	succs := append([]wire.NodeRef(nil), n.succ...)
	n.mu.Unlock()
	need := n.cfg.Replicas - 1
	distinct := 0
	for _, s := range succs {
		if s.ID != n.ref.ID {
			distinct++
		}
	}
	if need > distinct {
		// A short ring cannot hold more copies than it has nodes; the
		// durability contract degrades to what membership allows.
		need = distinct
	}
	if need <= 0 {
		return 0, nil
	}
	rec := []wire.Rec{{Key: key, Ver: ver, Value: value}}
	acked := 0
	var maxPeer uint64
	for _, s := range succs {
		if acked >= need {
			break
		}
		if s.ID == n.ref.ID {
			continue
		}
		reply, err := n.pool.call(s, &wire.Msg{Type: wire.TReplicate, Recs: rec})
		if err != nil {
			n.replicaErrs.Add(1)
			continue
		}
		if reply.A > maxPeer {
			maxPeer = reply.A
		}
		acked++
	}
	if acked < need {
		return maxPeer, fmt.Errorf("netchord: put %s: %d/%d replicas acknowledged", key.Short(), acked, need)
	}
	return maxPeer, nil
}

// --- maintenance -----------------------------------------------------

// maintenanceLoop paces stabilization in real time: every
// StabilizeEveryTicks ticks it runs one stabilize round (successor
// verification, notify, successor-list refresh) and fixes one finger,
// exactly the per-round work of the simulator's StabilizeAll but on
// live connections. Every AntiEntropyEveryTicks ticks it also runs one
// Merkle anti-entropy pass against its replicas and offers the store a
// compaction opportunity; with DensityThreshold set, every
// DensityEveryTicks ticks it also runs one local density scan
// (docs/ADVERSARY.md).
func (n *Node) maintenanceLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.Ticks(n.cfg.StabilizeEveryTicks))
	defer ticker.Stop()
	every := n.cfg.AntiEntropyEveryTicks / n.cfg.StabilizeEveryTicks
	if every < 1 {
		every = 1
	}
	densityEvery := n.cfg.DensityEveryTicks / n.cfg.StabilizeEveryTicks
	if densityEvery < 1 {
		densityEvery = 1
	}
	round := 0
	for {
		select {
		case <-n.closed:
			return
		case <-ticker.C:
			n.stabilizeOnce()
			n.checkPredecessor()
			n.fixNextFinger()
			round++
			if round%every == 0 {
				n.antiEntropyOnce()
				if _, err := n.st.MaybeCompact(); err != nil {
					n.replicaErrs.Add(1)
				}
			}
			if n.cfg.DensityThreshold > 0 && round%densityEvery == 0 {
				n.densityScanOnce()
			}
			n.probeLost()
			n.restoreGifts()
		}
	}
}

// densityScanOnce runs the per-arc ID-density defense over the node's
// local view — itself plus its successor list, which IS ring order
// starting at the node. Unlike the simulator's global scan the live
// rule has no ring order array, so the uniform expectation comes from
// adversary.EstimateRingSize over the same view, and every identity
// inside a window at least DensityThreshold times denser than that
// expectation is sent an advisory wire.TEvict (single cheap attempt, no
// retries — the next scan re-fires if the cluster is still there). The
// node never evicts itself: if it sits inside a flagged cluster its
// honest neighbors' scans will say so.
func (n *Node) densityScanOnce() {
	w := n.cfg.DensityWindow
	n.mu.Lock()
	view := make([]wire.NodeRef, 0, len(n.succ)+1)
	view = append(view, n.ref)
	view = append(view, n.succ...)
	n.mu.Unlock()
	// The estimate needs an honest majority of gaps outside any one
	// window; with fewer entries than that the view is all window and
	// there is no uniform remainder to compare against.
	if len(view) < w+2 {
		return
	}
	ringIDs := make([]ids.ID, len(view))
	for i, r := range view {
		ringIDs[i] = r.ID
	}
	est := adversary.EstimateRingSize(ringIDs)
	flagged := make([]bool, len(view))
	for i := 0; i+w <= len(view); i++ {
		if adversary.ViewDensityRatio(ringIDs, i, w, est) < n.cfg.DensityThreshold {
			continue
		}
		for k := 0; k < w; k++ {
			flagged[i+k] = true
		}
	}
	for i, f := range flagged {
		if !f || view[i].ID == n.ref.ID {
			continue
		}
		if err := n.pool.tryOnce(view[i], &wire.Msg{Type: wire.TEvict, From: n.ref}); err == nil {
			n.evictsSent.Add(1)
		}
	}
}

// stabilizeOnce runs the classic Chord stabilization step over RPC:
// find the first reachable successor (pruning dead heads), adopt its
// predecessor if closer, refresh the successor list, and notify.
func (n *Node) stabilizeOnce() {
	n.stabilizes.Add(1)
	for {
		n.mu.Lock()
		if len(n.succ) == 0 || n.succ[0].ID == n.ref.ID {
			// Own successor: adopt the predecessor as successor if one
			// has shown up (the bootstrap node learning of its first
			// joiner — successor.predecessor when successor is self).
			if n.hasPred && n.pred.ID != n.ref.ID && n.pred.Addr != "" {
				n.succ = []wire.NodeRef{n.pred}
			} else {
				n.mu.Unlock()
				return // genuinely alone on the ring
			}
		}
		succ := n.succ[0]
		n.mu.Unlock()

		predReply, err := n.pool.call(succ, &wire.Msg{Type: wire.TGetPred})
		if err != nil {
			// Dead or unreachable successor: drop it and try the backup
			// (this is exactly what the successor list exists for). Keep
			// at least self so the node can rejoin via fallbacks.
			n.mu.Lock()
			if len(n.succ) > 0 && n.succ[0].ID == succ.ID {
				n.succ = n.succ[1:]
			}
			n.rememberLostLocked(succ)
			empty := len(n.succ) == 0
			if empty {
				n.succ = []wire.NodeRef{n.ref}
			}
			n.mu.Unlock()
			if empty {
				return
			}
			continue
		}
		// Adopt succ.pred if it sits between us and succ and answers.
		if predReply.Flag {
			x := predReply.Node
			if x.Addr != "" && x.ID != n.ref.ID && ids.Between(x.ID, n.ref.ID, succ.ID) {
				if err := n.Ping(x); err == nil {
					succ = x
				}
			}
		}
		listReply, err := n.pool.call(succ, &wire.Msg{Type: wire.TGetSuccList})
		if err != nil {
			return // skip the round; stale pointers heal next time
		}
		n.mu.Lock()
		list := append([]wire.NodeRef{succ}, listReply.List...)
		n.succ = dedupeRefs(list, n.ref.ID, n.cfg.SuccessorListLen)
		n.mu.Unlock()
		_, _ = n.pool.call(succ, &wire.Msg{Type: wire.TNotify, From: n.ref})
		return
	}
}

// checkPredecessor is Chord's check_predecessor: clear a predecessor
// pointer that no longer answers so the true predecessor's next notify
// can take it (departed nodes would otherwise be remembered forever).
func (n *Node) checkPredecessor() {
	n.mu.Lock()
	pred, has := n.pred, n.hasPred
	n.mu.Unlock()
	if !has || pred.ID == n.ref.ID || pred.Addr == "" {
		return
	}
	if err := n.Ping(pred); err != nil {
		n.mu.Lock()
		if n.hasPred && n.pred.ID == pred.ID {
			n.hasPred = false
			n.rememberLostLocked(pred)
		}
		n.mu.Unlock()
	}
}

// rememberLostLocked adds r to the graveyard of pruned peers (deduped,
// FIFO-capped) so probeLost can check for its return; callers hold n.mu.
func (n *Node) rememberLostLocked(r wire.NodeRef) {
	if r.Addr == "" || r.ID == n.ref.ID {
		return
	}
	for _, l := range n.lost {
		if l.ID == r.ID {
			return
		}
	}
	n.lost = append(n.lost, r)
	if len(n.lost) > maxLostPeers {
		n.lost = n.lost[1:]
	}
}

// probeLost revisits one graveyard entry per maintenance round with a
// single cheap attempt (dials to dead peers fail fast; calls across an
// active partition are refused instantly). A peer that answers again
// means a partition healed: both sides now run self-consistent rings
// that ordinary stabilization can never merge, so this side re-resolves
// its own successor *through the revived peer* and adopts the answer if
// it tightens the pointer, then notifies it — one cross-ring edge, and
// stabilization zips the rest back together.
func (n *Node) probeLost() {
	n.mu.Lock()
	if len(n.lost) == 0 {
		n.mu.Unlock()
		return
	}
	cand := n.lost[n.lostNext%len(n.lost)]
	n.lostNext++
	n.mu.Unlock()
	if n.pool.tryOnce(cand, &wire.Msg{Type: wire.TPing}) != nil {
		return // still dead or still partitioned; try again next round
	}
	n.mu.Lock()
	for i, l := range n.lost {
		if l.ID == cand.ID {
			n.lost = append(n.lost[:i], n.lost[i+1:]...)
			break
		}
	}
	n.mu.Unlock()
	owner, _, err := n.lookupFrom(cand, n.ref.ID.Add(ids.PowerOfTwo(0)))
	if err != nil || owner.Addr == "" || owner.ID == n.ref.ID {
		return
	}
	n.mu.Lock()
	cur := n.ref
	if len(n.succ) > 0 {
		cur = n.succ[0]
	}
	if cur.ID == n.ref.ID || ids.Between(owner.ID, n.ref.ID, cur.ID) {
		n.succ = dedupeRefs(append([]wire.NodeRef{owner}, n.succ...), n.ref.ID, n.cfg.SuccessorListLen)
	}
	n.mu.Unlock()
	_, _ = n.pool.call(owner, &wire.Msg{Type: wire.TNotify, From: n.ref})
}

// restoreGifts resolves join gifts left unconfirmed past the joiner's
// whole client-side retry budget (with slack). A joiner that still
// answers a ping got its reply — or is on the ring and will notify — so
// the stash is simply dropped; a dead joiner took the handshake with it,
// so the extracted task units are folded back in. Work is therefore
// conserved even when a join dies between the gift and the first notify.
func (n *Node) restoreGifts() {
	grace := n.cfg.Ticks(n.cfg.RPCTimeoutTicks*(n.cfg.MaxRetries+2)) * 2
	n.mu.Lock()
	var stale []*joinGift
	for _, id := range n.joinOrder {
		if g := n.joinHandoff[id]; g != nil && time.Since(g.born) > grace {
			stale = append(stale, g)
		}
	}
	n.mu.Unlock()
	for _, g := range stale {
		err := n.pool.tryOnce(g.ref, &wire.Msg{Type: wire.TPing})
		n.mu.Lock()
		if n.joinHandoff[g.ref.ID] != g {
			n.mu.Unlock()
			continue // confirmed or replaced while we probed
		}
		delete(n.joinHandoff, g.ref.ID)
		if err != nil && !n.leaving {
			for _, tk := range g.tasks {
				n.addTaskLocked(tk.Key, tk.Units)
			}
		}
		n.mu.Unlock()
	}
}

// fixNextFinger advances the round-robin finger repair by one entry.
func (n *Node) fixNextFinger() {
	n.mu.Lock()
	i := n.nextFinger
	n.nextFinger = (n.nextFinger + 1) % ids.Bits
	target := n.ref.ID.Add(ids.PowerOfTwo(i))
	n.mu.Unlock()
	owner, _, err := n.Lookup(target)
	if err != nil {
		return // leave the stale entry; a later round will retry
	}
	n.mu.Lock()
	n.fingers[i] = owner
	n.mu.Unlock()
}

// --- server ----------------------------------------------------------

// acceptLoop admits inbound connections until the listener closes.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		// Replies pass through the fault layer too (remote identity is
		// unknown server-side, so only drop/dup/delay apply; the client
		// side already enforces the partition).
		wrapped := n.nf.Wrap(conn, n.ref.ID, ids.Zero)
		n.connMu.Lock()
		n.conns[conn] = struct{}{}
		n.connMu.Unlock()
		n.wg.Add(1)
		go n.serveConn(conn, wrapped)
	}
}

// serveConn reads frames until error, idle timeout, or shutdown,
// answering each through the handler.
func (n *Node) serveConn(raw net.Conn, conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = raw.Close()
		n.connMu.Lock()
		delete(n.conns, raw)
		n.connMu.Unlock()
	}()
	idle := n.cfg.Ticks(n.cfg.IdleConnTicks)
	for {
		if err := raw.SetReadDeadline(time.Now().Add(idle)); err != nil {
			return
		}
		req, err := wire.ReadMsg(conn)
		if err != nil {
			return // EOF, idle timeout, or malformed frame: drop the conn
		}
		reply := n.handle(req)
		reply.Req = req.Req
		if err := raw.SetWriteDeadline(time.Now().Add(n.cfg.rpcTimeout())); err != nil {
			return
		}
		if err := wire.WriteMsg(conn, reply); err != nil {
			return
		}
	}
}

// handle dispatches one request. Handlers touch only local state (or
// spawn goroutines for work that needs the network), so a request cycle
// between nodes can never deadlock on n.mu.
func (n *Node) handle(req *wire.Msg) *wire.Msg {
	n.served[req.Type].Add(1)
	switch req.Type {
	case wire.TPing:
		return &wire.Msg{Type: wire.TPong}

	case wire.TFindSuccessor:
		if req.A > uint64(n.cfg.MaxHops) {
			return errorMsg(CodeNoRoute, "hop budget exceeded")
		}
		done, next, list := n.routeStep(req.Key)
		return &wire.Msg{Type: wire.TFindSuccessorOK, Flag: done, Node: next, List: list}

	case wire.TGetPred:
		n.mu.Lock()
		reply := &wire.Msg{Type: wire.TGetPredOK, Flag: n.hasPred, Node: n.pred}
		n.mu.Unlock()
		return reply

	case wire.TGetSuccList:
		n.mu.Lock()
		reply := &wire.Msg{Type: wire.TSuccListOK, List: append([]wire.NodeRef(nil), n.succ...)}
		n.mu.Unlock()
		return reply

	case wire.TNotify:
		if req.From.Addr == "" {
			return errorMsg(CodeBadRequest, "notify without sender ref")
		}
		n.notify(req.From)
		return &wire.Msg{Type: wire.TAck}

	case wire.TJoin:
		return n.handleJoin(req)

	case wire.TGet:
		v, ver, ok, err := n.st.Get(req.Key)
		if err != nil {
			return errorMsg(CodeUnavailable, "store read: "+err.Error())
		}
		// Read-work coupling: a served read charges the owner work
		// units, so read-heavy arcs surface in the workload signals the
		// strategies act on. Reads during a leave are still answered
		// (the data is there) but charge nothing — the leaver's queue
		// has already been snapshotted for transfer.
		if units := n.cfg.ReadWorkUnits; units > 0 && ok {
			n.mu.Lock()
			if !n.leaving {
				n.addTaskLocked(req.Key, units)
			}
			n.mu.Unlock()
		}
		return &wire.Msg{Type: wire.TGetOK, Flag: ok, Value: v, A: ver}

	case wire.TPut:
		// The owner write path: durable locally (fsynced when SyncWrites
		// is on) AND acknowledged by Replicas-1 distinct successors
		// before the TAck goes back. Blocking on those round trips here
		// is deadlock-free — serveConn runs one goroutine per
		// connection and putDurable holds no lock while calling out —
		// and is exactly what "acknowledged means durable" requires.
		ver, err := n.putDurable(req.Key, req.Value)
		if err != nil {
			n.mu.Lock()
			leaving := n.leaving
			n.mu.Unlock()
			if leaving {
				return errorMsg(CodeShutdown, "node is leaving")
			}
			return errorMsg(CodeUnavailable, "durable put: "+err.Error())
		}
		return &wire.Msg{Type: wire.TAck, A: ver}

	case wire.TTask:
		// The leaving check shares the critical section with the
		// application: checked-then-applied across two lock acquisitions
		// would let units slip in between Leave's snapshot and Close.
		n.mu.Lock()
		if n.leaving {
			n.mu.Unlock()
			return errorMsg(CodeShutdown, "node is leaving")
		}
		if n.applyTokenLocked(req.B) {
			n.addTaskLocked(req.Key, req.A)
		}
		n.mu.Unlock()
		return &wire.Msg{Type: wire.TAck}

	case wire.TReplicate:
		// Replica push: apply version-winning records and report our
		// resulting version for the (single-record) durable-put ack
		// path. The leaving check keeps Leave's snapshot authoritative.
		n.mu.Lock()
		if n.leaving {
			n.mu.Unlock()
			return errorMsg(CodeShutdown, "node is leaving")
		}
		n.mu.Unlock()
		if _, err := n.st.ApplyAll(storeRecs(req.Recs)); err != nil {
			return errorMsg(CodeUnavailable, "replica apply: "+err.Error())
		}
		var cur uint64
		if len(req.Recs) == 1 {
			cur, _ = n.st.Ver(req.Recs[0].Key)
		}
		return &wire.Msg{Type: wire.TAck, A: cur}

	case wire.TTransfer:
		n.mu.Lock()
		if n.leaving {
			n.mu.Unlock()
			return errorMsg(CodeShutdown, "node is leaving")
		}
		fresh := n.applyTokenLocked(req.A)
		if fresh {
			for _, tk := range req.Tasks {
				n.addTaskLocked(tk.Key, tk.Units)
			}
		}
		n.mu.Unlock()
		if fresh {
			if _, err := n.st.ApplyAll(storeRecs(req.Recs)); err != nil {
				return errorMsg(CodeUnavailable, "transfer apply: "+err.Error())
			}
		}
		return &wire.Msg{Type: wire.TAck}

	case wire.TSyncDigest:
		n.mu.Lock()
		leaving := n.leaving
		n.mu.Unlock()
		if leaving {
			return errorMsg(CodeShutdown, "node is leaving")
		}
		sum, count := n.st.Digest(req.Key, req.Key2)
		return &wire.Msg{Type: wire.TSyncDigestOK, Value: sum[:], A: uint64(count)}

	case wire.TSyncKeys:
		n.mu.Lock()
		leaving := n.leaving
		n.mu.Unlock()
		if leaving {
			return errorMsg(CodeShutdown, "node is leaving")
		}
		metas, total := n.st.Metas(req.Key, req.Key2, wire.MaxMetas)
		return &wire.Msg{Type: wire.TSyncKeysOK, Metas: wireMetas(metas), A: uint64(total)}

	case wire.TSyncFetch:
		n.mu.Lock()
		leaving := n.leaving
		n.mu.Unlock()
		if leaving {
			return errorMsg(CodeShutdown, "node is leaving")
		}
		recs := make([]wire.Rec, 0, len(req.Metas))
		for _, m := range req.Metas {
			v, ver, ok, err := n.st.Get(m.Key)
			if err != nil {
				return errorMsg(CodeUnavailable, "sync fetch: "+err.Error())
			}
			if ok {
				recs = append(recs, wire.Rec{Key: m.Key, Ver: ver, Value: v})
			}
		}
		recs, _ = splitRecChunk(recs)
		return &wire.Msg{Type: wire.TSyncFetchOK, Recs: recs}

	case wire.TWorkloadQuery:
		n.mu.Lock()
		reply := &wire.Msg{Type: wire.TWorkloadOK, A: n.taskUnits}
		n.mu.Unlock()
		return reply

	case wire.TInvite:
		if n.host == nil {
			return &wire.Msg{Type: wire.TInviteOK, Flag: false}
		}
		return &wire.Msg{Type: wire.TInviteOK, Flag: n.host.considerInvite(req)}

	case wire.TEvict:
		if req.From.Addr == "" {
			return errorMsg(CodeBadRequest, "evict without sender ref")
		}
		n.mu.Lock()
		ev, leaving := n.ev, n.leaving
		n.mu.Unlock()
		// Advisory by design: an ownerless (or already-leaving) node just
		// acknowledges. The evictor dispatches its own goroutine, so the
		// serve path never blocks on an induced churn cycle.
		if ev != nil && !leaving {
			ev.considerEvict(n)
		}
		return &wire.Msg{Type: wire.TAck}

	default:
		return errorMsg(CodeBadRequest, "unexpected message "+req.Type.String())
	}
}

// handleJoin admits joiner From as this node's new predecessor,
// handing over the data keys (kept locally as replicas) and task units
// (moved, not copied — work must not be double-counted) in the range
// (pred, From.ID]. The gift is stashed until the joiner's first notify:
// a retried TJoin whose reply was lost re-sends the identical gift, so
// task moves stay exactly-once over the at-least-once RPC layer.
func (n *Node) handleJoin(req *wire.Msg) *wire.Msg {
	j := req.From
	if j.Addr == "" || j.ID == n.ref.ID {
		return errorMsg(CodeBadRequest, "bad join ref")
	}
	if !adversary.VerifyPuzzle(j.ID, req.A, n.cfg.PuzzleBits) {
		return errorMsg(CodeBadRequest, "join puzzle unsolved")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaving {
		return errorMsg(CodeShutdown, "node is leaving")
	}
	g := n.joinHandoff[j.ID]
	if g == nil {
		low := n.ref.ID
		if n.hasPred {
			low = n.pred.ID
		}
		g = &joinGift{ref: j, born: time.Now()}
		// low == j.ID happens when the joiner is already our predecessor
		// (a re-join of the same identity after its gift was confirmed);
		// the interval (j, j] would cover the whole ring, so hand over
		// nothing — the joiner's state never came back to us.
		if low != j.ID {
			arc, err := n.st.ArcRecs(low, j.ID, wire.MaxRecs)
			if err != nil {
				return errorMsg(CodeUnavailable, "join gift: "+err.Error())
			}
			// One frame only: anti-entropy tops up whatever the byte
			// budget trims once the joiner is linked in.
			g.recs, _ = splitRecChunk(wireRecs(arc))
			for _, k := range sortedTaskKeys(n.tasks) {
				if ids.BetweenRightIncl(k, low, j.ID) && len(g.tasks) < wire.MaxTasks {
					g.tasks = append(g.tasks, wire.Task{Key: k, Units: n.tasks[k]})
					n.taskUnits -= n.tasks[k]
					delete(n.tasks, k)
				}
			}
		}
		n.joinHandoff[j.ID] = g
		n.joinOrder = append(n.joinOrder, j.ID)
		// Evict the oldest unconfirmed gifts, skipping already-cleared
		// entries; losing a gift is then only possible after 64 joins
		// whose joiners all vanished before notifying.
		for len(n.joinOrder) > maxJoinHandoffs {
			old := n.joinOrder[0]
			n.joinOrder = n.joinOrder[1:]
			delete(n.joinHandoff, old)
		}
	}
	reply := &wire.Msg{
		Type:  wire.TJoinOK,
		List:  append([]wire.NodeRef(nil), n.succ...),
		Recs:  g.recs,
		Tasks: g.tasks,
	}
	// Adopt the joiner as predecessor when it improves the pointer.
	if !n.hasPred || ids.Between(j.ID, n.pred.ID, n.ref.ID) {
		n.pred = j
		n.hasPred = true
	}
	return reply
}

// notify is Chord's notify handler: adopt caller as predecessor when
// it sits between the current predecessor and us. A notify also
// confirms any pending join gift for the caller (its join reply
// arrived, or the ring has linked it in regardless).
func (n *Node) notify(caller wire.NodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.joinHandoff, caller.ID)
	if caller.ID == n.ref.ID {
		return
	}
	if !n.hasPred || n.pred.ID == n.ref.ID || ids.Between(caller.ID, n.pred.ID, n.ref.ID) {
		n.pred = caller
		n.hasPred = true
	}
}

// errorMsg builds a TError reply.
func errorMsg(code uint64, text string) *wire.Msg {
	return &wire.Msg{Type: wire.TError, A: code, Text: text}
}

// --- helpers ---------------------------------------------------------

// dedupeRefs returns list with self and duplicates removed, first
// occurrence kept, truncated to max entries.
func dedupeRefs(list []wire.NodeRef, self ids.ID, max int) []wire.NodeRef {
	out := make([]wire.NodeRef, 0, max)
	seen := make(map[ids.ID]struct{}, len(list))
	for _, r := range list {
		if r.ID == self || r.Addr == "" {
			continue
		}
		if _, dup := seen[r.ID]; dup {
			continue
		}
		seen[r.ID] = struct{}{}
		out = append(out, r)
		if len(out) >= max {
			break
		}
	}
	return out
}

// sortedTaskKeys returns m's keys in ascending ring order, so bulk
// operations iterate deterministically (and lint's maporder is happy).
func sortedTaskKeys(m map[ids.ID]uint64) []ids.ID {
	out := make([]ids.ID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
