package netchord

import (
	"fmt"
	"sort"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/obs"
	"chordbalance/internal/wire"
)

// Cluster boots and owns a whole single-process runtime: one collector
// plus Hosts hosts on a shared transport and fault layer. It exists for
// cmd/chordd's single-process mode and for tests; multi-process
// clusters are assembled by running cmd/chordd once per host with the
// same seed address.
type Cluster struct {
	cfg       Config
	tr        Transport
	nf        *NetFaults
	collector *Collector
	hosts     []*Host
}

// NewCluster starts a collector and nhosts hosts: host 0 creates the
// ring, the rest join through host 0's primary. Hosts are created
// sequentially (each join completes before the next starts) and their
// loops all start before NewCluster returns. tracer may be nil; nf may
// be nil.
func NewCluster(cfg Config, tr Transport, nf *NetFaults, nhosts int, strat Strategy, seed uint64, tracer *obs.Tracer) (*Cluster, error) {
	if nhosts <= 0 {
		return nil, fmt.Errorf("netchord: cluster needs at least one host, got %d", nhosts)
	}
	cfg = cfg.WithDefaults()
	col, err := NewCollector(cfg, tr, "", tracer)
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, tr: tr, nf: nf, collector: col}
	for i := 0; i < nhosts; i++ {
		join := ""
		if i > 0 {
			join = c.hosts[0].Primary().Addr()
		}
		h, err := NewHost(cfg, tr, nf, i, strat, seed, join, col.Addr())
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netchord: host %d: %w", i, err)
		}
		c.hosts = append(c.hosts, h)
	}
	for _, h := range c.hosts {
		h.Start()
	}
	return c, nil
}

// Close shuts down every host, then the collector.
func (c *Cluster) Close() {
	for _, h := range c.hosts {
		h.Close()
	}
	if c.collector != nil {
		c.collector.Close()
	}
}

// Hosts returns the cluster's hosts in index order.
func (c *Cluster) Hosts() []*Host { return c.hosts }

// Collector returns the cluster's collector.
func (c *Cluster) Collector() *Collector { return c.collector }

// SeedAddr returns host 0's current primary address — the address new
// processes should join through.
func (c *Cluster) SeedAddr() string { return c.hosts[0].Primary().Addr() }

// Nodes returns every live virtual node across all hosts.
func (c *Cluster) Nodes() []*Node {
	var out []*Node
	for _, h := range c.hosts {
		out = append(out, h.Nodes()...)
	}
	return out
}

// Converged reports whether the ring's pointers agree with the sorted
// membership: every node's successor is the next live ID clockwise and
// its predecessor the previous one. This is an in-process oracle for
// tests and readiness checks, not something a deployment could compute.
func (c *Cluster) Converged() bool {
	nodes := c.Nodes()
	if len(nodes) == 0 {
		return false
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID().Less(nodes[j].ID()) })
	for i, n := range nodes {
		next := nodes[(i+1)%len(nodes)]
		prev := nodes[(i-1+len(nodes))%len(nodes)]
		if n.Successor().ID != next.ID() {
			return false
		}
		pred, ok := n.Predecessor()
		if !ok || pred.ID != prev.ID() {
			return false
		}
	}
	return true
}

// AwaitConverged polls Converged until it holds or timeout elapses.
func (c *Cluster) AwaitConverged(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if c.Converged() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(c.cfg.Ticks(c.cfg.StabilizeEveryTicks))
	}
}

// TotalKeys counts distinct keys stored anywhere in the cluster
// (primaries and replicas collapse to one count per key).
func (c *Cluster) TotalKeys() int {
	seen := make(map[ids.ID]struct{})
	for _, n := range c.Nodes() {
		for _, k := range n.st.Keys() {
			seen[k] = struct{}{}
		}
	}
	return len(seen)
}

// FetchProgress queries a collector at addr over the wire — what
// cmd/dhtload does to poll for workload completion from outside the
// cluster process.
func FetchProgress(tr Transport, cfg Config, addr string) (Progress, error) {
	reply, err := collectorCall(tr, cfg, addr, wire.TProgress, wire.TProgressOK)
	if err != nil {
		return Progress{}, err
	}
	return Progress{
		Consumed:  reply.A,
		Residual:  reply.B,
		BusyTicks: int(reply.C),
		Capacity:  reply.D,
	}, nil
}

// FetchStats queries a collector for the full statistics blob: the
// Progress counters plus the storage (net.store.*) and streaming
// (net.stream.*) aggregates that TProgressOK's four slots cannot carry.
func FetchStats(tr Transport, cfg Config, addr string) (Progress, error) {
	reply, err := collectorCall(tr, cfg, addr, wire.TStats, wire.TStatsOK)
	if err != nil {
		return Progress{}, err
	}
	s, err := wire.DecodeStats(reply.Value)
	if err != nil {
		return Progress{}, err
	}
	return progressFromStats(s), nil
}

// collectorCall performs one request/reply exchange with a collector
// over a fresh connection.
func collectorCall(tr Transport, cfg Config, addr string, req, want wire.Type) (*wire.Msg, error) {
	cfg = cfg.WithDefaults()
	conn, err := tr.Dial(addr, cfg.rpcTimeout())
	if err != nil {
		return nil, err
	}
	defer func() { _ = conn.Close() }()
	deadline := time.Now().Add(cfg.rpcTimeout())
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := wire.WriteMsg(conn, &wire.Msg{Type: req, Req: 1}); err != nil {
		return nil, err
	}
	reply, err := wire.ReadMsg(conn)
	if err != nil {
		return nil, err
	}
	if reply.Type != want {
		return nil, fmt.Errorf("%w: %s", ErrRemote, reply.Text)
	}
	return reply, nil
}
