package netchord

import (
	"errors"
	"sort"
	"testing"
	"time"

	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
	"chordbalance/internal/wire"
	"chordbalance/internal/xrand"
)

// testConfig is a fast clock for tests: 1ms ticks so stabilization and
// backoff complete quickly without becoming scheduling-sensitive.
func testConfig() Config {
	return Config{TickEvery: time.Millisecond}.WithDefaults()
}

// startRing boots n standalone nodes on tr with deterministic IDs,
// joins 1..n-1 through node 0, starts them all, and registers cleanup.
func startRing(t *testing.T, tr Transport, cfg Config, n int) []*Node {
	t.Helper()
	rng := xrand.New(42)
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		nd, err := NewNode(cfg, tr, nil, ids.Random(rng), "")
		if err != nil {
			t.Fatalf("NewNode %d: %v", i, err)
		}
		if i == 0 {
			nd.Create()
		} else if err := nd.Join(nodes[0].Addr()); err != nil {
			t.Fatalf("Join %d: %v", i, err)
		}
		nd.Start()
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes
}

// awaitRing polls until every node's successor/predecessor pointers
// agree with the sorted membership.
func awaitRing(t *testing.T, cfg Config, nodes []*Node, timeout time.Duration) {
	t.Helper()
	sorted := append([]*Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID().Less(sorted[j].ID()) })
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for i, nd := range sorted {
			next := sorted[(i+1)%len(sorted)]
			prev := sorted[(i-1+len(sorted))%len(sorted)]
			if nd.Successor().ID != next.ID() {
				ok = false
				break
			}
			pred, has := nd.Predecessor()
			if !has || pred.ID != prev.ID() {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring did not converge within %v", timeout)
		}
		time.Sleep(cfg.Ticks(cfg.StabilizeEveryTicks))
	}
}

func TestRingConvergesAndRoutes(t *testing.T) {
	cfg := testConfig()
	nodes := startRing(t, NewPipeTransport(), cfg, 8)
	awaitRing(t, cfg, nodes, 10*time.Second)

	// Every node resolves every key to the same owner, and the owner is
	// correct by the sorted-ring oracle.
	sorted := append([]*Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID().Less(sorted[j].ID()) })
	owner := func(key ids.ID) ids.ID {
		for _, nd := range sorted {
			if !nd.ID().Less(key) {
				return nd.ID() // first ID >= key owns it
			}
		}
		return sorted[0].ID() // wraps past the top of the space
	}
	rng := xrand.New(7)
	for trial := 0; trial < 32; trial++ {
		key := ids.Random(rng)
		want := owner(key)
		for _, nd := range nodes {
			got, _, err := nd.Lookup(key)
			if err != nil {
				t.Fatalf("lookup from %s: %v", nd.ID().Short(), err)
			}
			if got.ID != want {
				t.Fatalf("lookup %s from %s: got owner %s, want %s",
					key.Short(), nd.ID().Short(), got.ID.Short(), want.Short())
			}
		}
	}
}

func TestPutGetAcrossNodes(t *testing.T) {
	cfg := testConfig()
	nodes := startRing(t, NewPipeTransport(), cfg, 6)
	awaitRing(t, cfg, nodes, 10*time.Second)

	rng := xrand.New(11)
	keys := make([]ids.ID, 24)
	for i := range keys {
		keys[i] = ids.Random(rng)
		if err := nodes[i%len(nodes)].Put(keys[i], []byte{byte(i)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i, k := range keys {
		v, err := nodes[(i+3)%len(nodes)].Get(k)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("get %d: got %v", i, v)
		}
	}
	if _, err := nodes[0].Get(ids.Random(rng)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: got %v, want ErrNotFound", err)
	}
}

func TestLeaveHandsOffKeysAndTasks(t *testing.T) {
	cfg := testConfig()
	nodes := startRing(t, NewPipeTransport(), cfg, 5)
	awaitRing(t, cfg, nodes, 10*time.Second)

	rng := xrand.New(3)
	keys := make([]ids.ID, 20)
	for i := range keys {
		keys[i] = ids.Random(rng)
		if err := nodes[0].Put(keys[i], []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := nodes[0].SubmitTask(keys[i], 2); err != nil {
			t.Fatalf("task: %v", err)
		}
	}
	var total uint64
	for _, nd := range nodes {
		total += nd.TaskUnits()
	}
	if total != 40 {
		t.Fatalf("task units before leave: got %d, want 40", total)
	}

	if err := nodes[2].Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	rest := append(append([]*Node(nil), nodes[:2]...), nodes[3:]...)
	awaitRing(t, cfg, rest, 10*time.Second)

	for i, k := range keys {
		if _, err := rest[i%len(rest)].Get(k); err != nil {
			t.Fatalf("get %s after leave: %v", k.Short(), err)
		}
	}
	total = 0
	for _, nd := range rest {
		total += nd.TaskUnits()
	}
	if total != 40 {
		t.Fatalf("task units after leave: got %d, want 40 (work lost or duplicated)", total)
	}
}

func TestRPCRetriesAndTimeout(t *testing.T) {
	cfg := Config{TickEvery: time.Millisecond, RPCTimeoutTicks: 5, MaxRetries: 2}.WithDefaults()
	tr := NewPipeTransport()
	nd, err := NewNode(cfg, tr, nil, ids.FromUint64(1), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nd.Close)
	nd.Create()
	nd.Start()

	start := time.Now()
	err = nd.Ping(wire.NodeRef{ID: ids.FromUint64(2), Addr: "pipe:dead"})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping dead addr: got %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop took %v, budget blown", elapsed)
	}
	st := nd.Stats().RPC
	if st.Calls != 1 || st.Retries != int64(cfg.MaxRetries) || st.Timeouts != 1 {
		t.Fatalf("rpc stats: %+v", st)
	}
	if st.BackoffTicks == 0 {
		t.Fatalf("expected backoff to be charged, got %+v", st)
	}
}

func TestPartitionRefusalAndHeal(t *testing.T) {
	cfg := testConfig()
	nf, err := NewNetFaults(faults.Plan{Seed: 9}, cfg.TickEvery)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewPipeTransport()
	rng := xrand.New(42)
	a, err := NewNode(cfg, tr, nf, ids.Random(rng), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	a.Create()
	a.Start()
	b, err := NewNode(cfg, tr, nf, ids.Random(rng), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	b.Start()

	// Cut the ring so a and b land on different sides, then verify the
	// client refuses instead of burning the full timeout.
	if err := nf.ForcePartition(0.5); err != nil {
		t.Fatal(err)
	}
	if nf.SameSide(a.ID(), b.ID()) {
		t.Skip("both IDs landed on one side of the 0.5 cut; nothing to assert")
	}
	if err := a.Ping(b.Ref()); !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping across partition: got %v, want ErrTimeout", err)
	}
	if nf.Stats().PartitionRefusals == 0 {
		t.Fatalf("expected client-side refusals, stats %+v", nf.Stats())
	}
	nf.Heal()
	if err := a.Ping(b.Ref()); err != nil {
		t.Fatalf("ping after heal: %v", err)
	}
}

func TestDropsAreRetriedTransparently(t *testing.T) {
	cfg := Config{TickEvery: time.Millisecond, RPCTimeoutTicks: 20, MaxRetries: 6}.WithDefaults()
	nf, err := NewNetFaults(faults.Plan{Seed: 5, DropRate: 0.2, DupRate: 0.1}, cfg.TickEvery)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewPipeTransport()
	rng := xrand.New(1)
	a, err := NewNode(cfg, tr, nf, ids.Random(rng), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	a.Create()
	a.Start()
	b, err := NewNode(cfg, tr, nf, ids.Random(rng), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	b.Start()

	// 20% frame loss each way (a round trip survives with p ≈ 0.64 per
	// attempt) across 7 attempts: 200 pings virtually all succeed.
	failed := 0
	for i := 0; i < 200; i++ {
		if err := a.Ping(b.Ref()); err != nil {
			failed++
		}
	}
	if failed > 3 {
		t.Fatalf("%d/200 pings failed under 20%% drop with retries", failed)
	}
	if nf.Stats().Drops == 0 {
		t.Fatalf("fault layer injected nothing: %+v", nf.Stats())
	}
}

func TestTCPTransportSmoke(t *testing.T) {
	cfg := testConfig()
	nodes := startRing(t, TCP{}, cfg, 3)
	awaitRing(t, cfg, nodes, 10*time.Second)
	key := ids.FromUint64(99)
	if err := nodes[1].Put(key, []byte("tcp")); err != nil {
		t.Fatal(err)
	}
	v, err := nodes[2].Get(key)
	if err != nil || string(v) != "tcp" {
		t.Fatalf("get over tcp: %q, %v", v, err)
	}
}

func TestServerRejectsGarbageFrames(t *testing.T) {
	cfg := testConfig()
	tr := NewPipeTransport()
	nd, err := NewNode(cfg, tr, nil, ids.FromUint64(1), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nd.Close)
	nd.Create()
	nd.Start()

	conn, err := tr.Dial(nd.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// The write may itself error: net.Pipe is synchronous, so when the
	// server rejects the bad header and closes, the unread tail of our
	// write fails. Either way the server must survive it.
	_, _ = conn.Write([]byte("XX garbage that is not a frame"))
	// The server must drop the connection, not crash: a subsequent
	// well-formed request on a fresh connection still works.
	if err := nd.Ping(nd.Ref()); err != nil {
		t.Fatalf("node unhealthy after garbage: %v", err)
	}
}
