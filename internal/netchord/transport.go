package netchord

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"
)

// Transport abstracts how nodes reach each other: loopback TCP for real
// sockets (and multi-process clusters) or an in-process pipe fabric for
// tests. Both yield ordinary net.Conn streams, so every layer above —
// framing, pooling, fault injection — is transport-agnostic.
type Transport interface {
	// Listen opens a server endpoint. addr "" asks the transport to
	// pick one (TCP: 127.0.0.1 with an ephemeral port).
	Listen(addr string) (net.Listener, error)
	// Dial connects to a listener's address within timeout.
	Dial(addr string, timeout time.Duration) (net.Conn, error)
}

// TCP is the loopback TCP transport.
type TCP struct{}

// Listen implements Transport. An empty addr binds 127.0.0.1:0.
func (TCP) Listen(addr string) (net.Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return net.Listen("tcp", addr)
}

// Dial implements Transport.
func (TCP) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// PipeTransport is an in-process fabric over net.Pipe: every Listen
// registers a named endpoint, every Dial synthesizes a synchronous,
// deadline-capable duplex pipe to it. It exists so large-cluster tests
// can run without consuming file descriptors or ports; the byte stream,
// framing, timeout, and fault behavior are identical to TCP.
type PipeTransport struct {
	mu        sync.Mutex
	nextID    int
	listeners map[string]*pipeListener
}

// NewPipeTransport returns an empty fabric.
func NewPipeTransport() *PipeTransport {
	return &PipeTransport{listeners: make(map[string]*pipeListener)}
}

// Listen implements Transport. An empty addr allocates "pipe:<n>".
func (t *PipeTransport) Listen(addr string) (net.Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if addr == "" {
		addr = "pipe:" + strconv.Itoa(t.nextID)
		t.nextID++
	}
	if _, taken := t.listeners[addr]; taken {
		return nil, fmt.Errorf("netchord: pipe address %q already bound", addr)
	}
	ln := &pipeListener{
		t:      t,
		addr:   pipeAddr(addr),
		accept: make(chan net.Conn, 16),
		closed: make(chan struct{}),
	}
	t.listeners[addr] = ln
	return ln, nil
}

// Dial implements Transport.
func (t *PipeTransport) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	t.mu.Lock()
	ln := t.listeners[addr]
	t.mu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("netchord: pipe dial %q: connection refused", addr)
	}
	client, server := net.Pipe()
	select {
	case ln.accept <- server:
		return client, nil
	case <-ln.closed:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("netchord: pipe dial %q: connection refused", addr)
	case <-time.After(timeout):
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("netchord: pipe dial %q: timeout", addr)
	}
}

// pipeListener implements net.Listener over the fabric's accept queue.
type pipeListener struct {
	t      *PipeTransport
	addr   pipeAddr
	accept chan net.Conn

	closeOnce sync.Once
	closed    chan struct{}
}

// Accept implements net.Listener.
func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener; it unregisters the endpoint so later
// dials are refused, like a closed TCP listener.
func (l *pipeListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.t.mu.Lock()
		delete(l.t.listeners, string(l.addr))
		l.t.mu.Unlock()
		// Drain connections parked in the accept queue.
		for {
			select {
			case c := <-l.accept:
				_ = c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr implements net.Listener.
func (l *pipeListener) Addr() net.Addr { return l.addr }

// pipeAddr implements net.Addr for fabric endpoints.
type pipeAddr string

// Network implements net.Addr.
func (pipeAddr) Network() string { return "pipe" }

// String implements net.Addr.
func (a pipeAddr) String() string { return string(a) }
