//go:build soak

package netchord

// The streaming soak (make stream-soak, docs/STREAMING.md) points 32
// concurrent viewers at a 12-host loopback TCP cluster for ~30 seconds
// while frames drop and a quarter of the identifier space partitions
// away mid-run and heals. It asserts the streaming read path's three
// over-time properties: every delivered chunk is byte-exact against the
// catalog, every ingested chunk is still readable after the heal (zero
// acked-chunk loss), and the rebuffer rate stays sane despite the
// partition. Gated behind the soak build tag like the other soaks.

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
	"chordbalance/internal/streamload"
)

// soakIngestPutter spreads catalog puts across the cluster's hosts.
type soakIngestPutter struct {
	c *Cluster
	i atomic.Uint64
}

func (p *soakIngestPutter) Put(key ids.ID, value []byte) error {
	n := p.i.Add(1)
	return p.c.Hosts()[int(n)%len(p.c.Hosts())].Primary().Put(key, value)
}

func TestSoakStream(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	cfg := Config{
		TickEvery:       2 * time.Millisecond,
		Replicas:        2,
		InviteThreshold: 8,
		ReadWorkUnits:   1, // served chunks count as work, so reads drive the strategy
	}.WithDefaults()
	nf, err := NewNetFaults(faults.Plan{Seed: 91, DropRate: 0.02, DupRate: 0.01}, cfg.TickEvery)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(cfg, TCP{}, nf, 12, StrategyInvitation, 909, nil)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	t.Cleanup(func() {
		if !closed {
			c.Close()
		}
	})
	if !c.AwaitConverged(60 * time.Second) {
		t.Fatal("12-host TCP ring did not converge")
	}

	// The catalog lands in one eighth of the ring (HotBits 3) so the
	// viewers concentrate read load the way the paper's skewed task
	// stream does; the invitation strategy has to spread it.
	cat := &streamload.Catalog{
		Objects:      24,
		ObjectChunks: 48,
		ChunkBytes:   512,
		Salt:         909,
		HotBits:      3,
		ArcLow:       ids.MustHex("2000000000000000000000000000000000000000"),
	}
	ing := &soakIngestPutter{c: c}
	if err := streamload.Ingest(ing, cat, 8); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	t.Logf("ingested %d chunks (%d bytes)", cat.TotalChunks(), cat.TotalBytes())

	// A real client over TCP, exactly what dhtload -stream runs: cached
	// routes, full payload verification against the catalog.
	client := NewClient(cfg, TCP{}, c.SeedAddr(), 909)
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	fetcher := streamload.NewCachedFetcher(client, cat, true)
	eng, err := streamload.NewEngine(streamload.Config{
		Catalog:       cat,
		Viewers:       32,
		Seed:          909,
		ZipfS:         1.0,
		ChunkDur:      10 * time.Millisecond,
		StartupChunks: 2,
		Window:        8,
		MaxInFlight:   4,
		MidJoinProb:   0.2,
		TargetChunks:  1 << 40, // the window below ends the run, not a count
		SLO:           50 * time.Millisecond,
		RetryBackoff:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Soak window: viewers play continuously while a quarter of the ring
	// partitions away a third of the way in and heals at two thirds.
	const window = 30 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	go func() {
		time.Sleep(window / 3)
		if err := nf.ForcePartition(0.25); err != nil {
			t.Error(err)
			return
		}
		time.Sleep(window / 3)
		nf.Heal()
	}()
	// Reporter loop: cumulative totals to the collector, like dhtload.
	repStop := make(chan struct{})
	repDone := make(chan struct{})
	go func() {
		defer close(repDone)
		tick := time.NewTicker(cfg.Ticks(cfg.ReportEveryTicks * 2))
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				tot := eng.Totals()
				_ = client.ReportStream(c.Collector().Addr(), tot.Chunks, tot.DeadlineMiss, tot.Rebuffers, tot.Bytes)
			case <-repStop:
				return
			}
		}
	}()

	res := eng.Run(ctx, fetcher)
	close(repStop)
	<-repDone
	nf.Heal() // idempotent: make sure the ring is whole for the sweep
	hits, lookups := fetcher.RouteStats()
	t.Logf("stream window done: sessions=%d chunks=%d errors=%d rebuffer-rate=%.4f "+
		"miss-rate=%.4f p99=%.0fus route-hits=%d lookups=%d",
		res.Sessions, res.Chunks, res.FetchErrors, res.RebufferRate,
		res.DeadlineMissRate, res.FetchP99us, hits, lookups)

	if res.Chunks < 1000 {
		t.Fatalf("only %d chunks delivered in %v; the stream never got going", res.Chunks, window)
	}
	// (1) Byte-exact delivery: a verifying fetcher that saw a single
	// payload diverge from the catalog means acked data was damaged.
	if n := fetcher.Corrupt(); n != 0 {
		t.Fatalf("%d delivered chunks failed catalog verification", n)
	}
	// (2) The partition may stall viewers, but it must not wreck the
	// run: most deliveries still have to be stall-free.
	if res.RebufferRate >= 0.5 {
		t.Fatalf("rebuffer rate %.4f >= 0.5 across the partition window", res.RebufferRate)
	}

	// (3) Zero acked-chunk loss: after the heal, every ingested chunk
	// must read back byte-exact through a fresh fetch (no cached route).
	if !c.AwaitConverged(60 * time.Second) {
		t.Fatal("ring did not re-converge after heal")
	}
	sweep := streamload.NewCachedFetcher(client, cat, true)
	lost := 0
	for obj := 0; obj < cat.Objects; obj++ {
		for chunk := 0; chunk < cat.ObjectChunks; chunk++ {
			key := cat.ChunkKey(obj, chunk)
			deadline := time.Now().Add(20 * time.Second)
			for {
				if _, err := sweep.Fetch(obj, chunk, key); err == nil {
					break
				} else if time.Now().After(deadline) {
					t.Errorf("acked chunk %d/%d unreadable after heal: %v", obj, chunk, err)
					lost++
					break
				}
				time.Sleep(cfg.Ticks(cfg.StabilizeEveryTicks * 2))
			}
		}
	}
	if lost > 0 || sweep.Corrupt() != 0 {
		t.Fatalf("acked-chunk loss after heal: %d unreadable, %d corrupt of %d",
			lost, sweep.Corrupt(), cat.TotalChunks())
	}
	t.Logf("post-heal sweep: all %d chunks byte-exact", cat.TotalChunks())

	// The collector must have the client's final cumulative report.
	tot := eng.Totals()
	_ = client.ReportStream(c.Collector().Addr(), tot.Chunks, tot.DeadlineMiss, tot.Rebuffers, tot.Bytes)
	p := c.Collector().Progress()
	if p.StreamChunks != res.Chunks || p.StreamBytes != res.Bytes {
		t.Fatalf("collector stream view (chunks=%d bytes=%d) disagrees with the engine (%d, %d)",
			p.StreamChunks, p.StreamBytes, res.Chunks, res.Bytes)
	}

	// Goroutine-exact shutdown, same bar as the other soaks.
	client.Close()
	c.Close()
	closed = true
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+soakGoroutineSlack {
			t.Logf("shutdown clean: goroutines baseline=%d now=%d", baseline, g)
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after shutdown: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(200 * time.Millisecond)
	}
}
