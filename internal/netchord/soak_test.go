//go:build soak

package netchord

// The soak test (make soak, docs/NETWORK.md) runs a 16-host cluster
// over real loopback TCP sockets for about a minute under frame loss
// and a mid-run partition, then asserts the two properties that only
// show up over time: goroutine-exact shutdown (no leaked accept loops,
// maintenance tickers, or pooled connections) and key durability with
// Replicas >= 2 across everything the run did to the ring. It is gated
// behind the soak build tag so `go test ./...` stays fast.

import (
	"runtime"
	"testing"
	"time"

	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

// soakGoroutineSlack is the tolerated post-shutdown goroutine delta.
// The Go runtime parks a few of its own helpers (netpoll, timer
// wakeups) on first use and never unwinds them; everything netchord
// starts must be gone.
const soakGoroutineSlack = 3

func TestSoakCluster(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	cfg := Config{
		TickEvery:       2 * time.Millisecond,
		Replicas:        2,
		InviteThreshold: 8,
	}.WithDefaults()
	nf, err := NewNetFaults(faults.Plan{Seed: 42, DropRate: 0.02, DupRate: 0.01}, cfg.TickEvery)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(cfg, TCP{}, nf, 16, StrategyInvitation, 101, nil)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	t.Cleanup(func() {
		if !closed {
			c.Close()
		}
	})
	if !c.AwaitConverged(60 * time.Second) {
		t.Fatal("16-host TCP ring did not converge")
	}

	// Durable keys, replicated, written before any trouble starts. With
	// Replicas >= 2 every one of them must survive the whole soak.
	rng := xrand.New(55)
	keys := make([]ids.ID, 64)
	for i := range keys {
		keys[i] = ids.Random(rng)
		if err := c.Hosts()[i%16].Primary().Put(keys[i], []byte{byte(i)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// Soak window: a steady skewed task stream into one arc while a
	// quarter of the identifier space partitions away mid-run and heals
	// before the end. Submissions that fail during the partition are
	// simply not counted — the accounting check below only requires
	// that everything that entered the system is consumed.
	target := c.Hosts()[5].Primary()
	pred, ok := target.Predecessor()
	if !ok {
		t.Fatal("target has no predecessor after convergence")
	}
	const window = 60 * time.Second
	start := time.Now()
	partitionAt := start.Add(window / 3)
	healAt := start.Add(2 * window / 3)
	partitioned, healed := false, false
	var submitted uint64
	submitErrs := 0
	for time.Since(start) < window {
		if !partitioned && time.Now().After(partitionAt) {
			if err := nf.ForcePartition(0.25); err != nil {
				t.Fatal(err)
			}
			partitioned = true
		}
		if !healed && time.Now().After(healAt) {
			nf.Heal()
			healed = true
		}
		key, err := ids.UniformInRange(rng, pred.ID, target.ID())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Hosts()[int(submitted/8)%16].Primary().SubmitTask(key, 8); err != nil {
			submitErrs++
		} else {
			submitted += 8
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !healed {
		nf.Heal()
	}
	t.Logf("soak window done: submitted=%d submit-errors=%d", submitted, submitErrs)
	if submitted == 0 {
		t.Fatal("no submission ever succeeded during the soak window")
	}

	// Everything that entered the system must drain: consumed at least
	// what was acknowledged, nothing residual.
	p := awaitProgress(t, c, submitted, 120*time.Second)
	t.Logf("drained: consumed=%d busy-ticks=%d injections=%d", p.Consumed, p.BusyTicks, p.Injections)

	// The ring must re-converge after heal, and no key may be lost.
	if !c.AwaitConverged(60 * time.Second) {
		t.Fatal("ring did not re-converge after heal")
	}
	lost := 0
	for i, k := range keys {
		if _, err := c.Hosts()[(i+3)%16].Primary().Get(k); err != nil {
			t.Errorf("key %s lost during soak: %v", k.Short(), err)
			lost++
		}
	}
	if lost > 0 {
		t.Fatalf("%d/%d keys lost with Replicas=%d", lost, len(keys), cfg.Replicas)
	}

	// Shutdown must return the process to its goroutine baseline:
	// every accept loop, node server, maintenance ticker, and pooled
	// connection reader has to exit.
	c.Close()
	closed = true
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+soakGoroutineSlack {
			t.Logf("shutdown clean: goroutines baseline=%d now=%d", baseline, g)
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after shutdown: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// TestSoakDurableStore is the storage soak: a 12-host TCP cluster with
// durable segment logs and Replicas=2 takes a continuous acknowledged
// write stream for a minute under frame drop, delay, and a mid-run
// partition that heals. At the end it asserts the three durability
// properties end-to-end:
//
//  1. zero acknowledged-write loss — every PutVer that returned nil
//     reads back at >= its acknowledged version, exact bytes at
//     version equality;
//  2. post-heal anti-entropy convergence — every node's primary-arc
//     Merkle digest matches its replicas' digests over the same arc,
//     with no full-state transfer anywhere in the protocol;
//  3. goroutine-exact shutdown, segment logs and all.
func TestSoakDurableStore(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()

	cfg := Config{
		TickEvery: 2 * time.Millisecond,
		Replicas:  2,
		DataDir:   t.TempDir(),
	}.WithDefaults()
	nf, err := NewNetFaults(faults.Plan{
		Seed: 77, DropRate: 0.02, DelayRate: 0.02, MaxDelayTicks: 4,
	}, cfg.TickEvery)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(cfg, TCP{}, nf, 12, StrategyNone, 303, nil)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	t.Cleanup(func() {
		if !closed {
			c.Close()
		}
	})
	if !c.AwaitConverged(60 * time.Second) {
		t.Fatal("12-host TCP ring did not converge")
	}

	// The write stream: a bounded key pool overwritten throughout the
	// window, so the final check also catches resurrected stale
	// versions, not just missing keys. Only nil-error puts enter the
	// ledger — an errored put made no durability promise.
	type ackedWrite struct {
		ver   uint64
		value string
	}
	rng := xrand.New(56)
	pool := make([]ids.ID, 48)
	for i := range pool {
		pool[i] = ids.Random(rng)
	}
	ledger := make(map[ids.ID]ackedWrite)

	const window = 60 * time.Second
	start := time.Now()
	partitionAt := start.Add(window / 3)
	healAt := start.Add(2 * window / 3)
	partitioned, healed := false, false
	acked, putErrs := 0, 0
	for i := 0; time.Since(start) < window; i++ {
		if !partitioned && time.Now().After(partitionAt) {
			if err := nf.ForcePartition(0.25); err != nil {
				t.Fatal(err)
			}
			partitioned = true
		}
		if !healed && time.Now().After(healAt) {
			nf.Heal()
			healed = true
		}
		key := pool[i%len(pool)]
		val := "soak-" + key.Short() + "-" + time.Now().Format("150405.000")
		ver, err := c.Hosts()[i%12].Primary().PutVer(key, []byte(val))
		if err != nil {
			putErrs++
		} else {
			acked++
			if prev, ok := ledger[key]; !ok || ver >= prev.ver {
				ledger[key] = ackedWrite{ver: ver, value: val}
			}
		}
		time.Sleep(75 * time.Millisecond)
	}
	if !healed {
		nf.Heal()
	}
	t.Logf("write window done: acked=%d errors=%d distinct-keys=%d", acked, putErrs, len(ledger))
	if acked == 0 {
		t.Fatal("no write was ever acknowledged during the soak window")
	}
	if !c.AwaitConverged(60 * time.Second) {
		t.Fatal("ring did not re-converge after heal")
	}

	// (1) Zero acknowledged-write loss.
	lost := 0
	for key, w := range ledger {
		var v []byte
		var ver uint64
		deadline := time.Now().Add(30 * time.Second)
		for {
			v, ver, err = c.Hosts()[int(key[0])%12].Primary().GetVer(key)
			if err == nil && ver >= w.ver {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("acked write %s@%d unreadable: ver=%d err=%v", key.Short(), w.ver, ver, err)
				lost++
				break
			}
			time.Sleep(cfg.Ticks(cfg.AntiEntropyEveryTicks))
		}
		if err == nil && ver == w.ver && string(v) != w.value {
			t.Errorf("acked bytes lost for %s@%d: %q != %q", key.Short(), w.ver, v, w.value)
			lost++
		}
	}
	if lost > 0 {
		t.Fatalf("%d/%d acknowledged writes lost with Replicas=%d", lost, len(ledger), cfg.Replicas)
	}

	// (2) Post-heal Merkle convergence: every node's primary-arc digest
	// equals its replicas' digests over the same arc.
	byID := make(map[ids.ID]*Node)
	for _, n := range c.Nodes() {
		byID[n.ID()] = n
	}
	digestDeadline := time.Now().Add(120 * time.Second)
	for {
		diverged := 0
		for _, n := range c.Nodes() {
			pred, ok := n.Predecessor()
			if !ok {
				diverged++
				continue
			}
			want, _ := n.Store().Digest(pred.ID, n.ID())
			reps := dedupeRefs(n.SuccessorList(), n.ID(), cfg.Replicas-1)
			for _, r := range reps {
				rep := byID[r.ID]
				if rep == nil {
					continue // ref to a node outside this cluster snapshot
				}
				if got, _ := rep.Store().Digest(pred.ID, n.ID()); got != want {
					diverged++
				}
			}
		}
		if diverged == 0 {
			break
		}
		if time.Now().After(digestDeadline) {
			t.Fatalf("anti-entropy never converged: %d divergent arcs remain", diverged)
		}
		time.Sleep(cfg.Ticks(cfg.AntiEntropyEveryTicks * 2))
	}
	t.Logf("all primary arcs digest-equal across replicas")

	// (3) Goroutine-exact shutdown.
	c.Close()
	closed = true
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+soakGoroutineSlack {
			t.Logf("shutdown clean: goroutines baseline=%d now=%d", baseline, g)
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after shutdown: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(200 * time.Millisecond)
	}
}
