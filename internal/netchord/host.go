package netchord

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/wire"
	"chordbalance/internal/xrand"
)

// Strategy selects one of the paper's autonomous load-balancing
// policies, rendered as local per-host decision rules instead of the
// simulator's global decision pass.
type Strategy int

// The strategy set. Each value mirrors an internal/strategy policy; the
// semantics are the same local rules, driven by each host's own loop.
const (
	// StrategyNone is the baseline: no Sybils, no reaction.
	StrategyNone Strategy = iota
	// StrategyChurn is induced churn (§IV-A): a host whose work is done
	// leaves and rejoins under a fresh identifier, probabilistically
	// landing in a loaded arc.
	StrategyChurn
	// StrategyRandom is random injection (§IV-B): an idle host projects
	// one Sybil per decision at a uniformly random identifier, dropping
	// Sybils that acquired nothing.
	StrategyRandom
	// StrategyNeighbor is neighbor injection (§IV-C): an idle host
	// splits the largest arc among its successors at the midpoint.
	StrategyNeighbor
	// StrategyInvitation is the invitation strategy (§IV-D): an
	// overloaded node invites its predecessors; an idle predecessor
	// injects a Sybil into the inviter's arc.
	StrategyInvitation
)

// String renders the strategy's harness-facing name.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "none"
	case StrategyChurn:
		return "churn"
	case StrategyRandom:
		return "random"
	case StrategyNeighbor:
		return "neighbor"
	case StrategyInvitation:
		return "invitation"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ParseStrategy maps a harness-facing name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "none", "":
		return StrategyNone, nil
	case "churn":
		return StrategyChurn, nil
	case "random":
		return StrategyRandom, nil
	case "neighbor":
		return StrategyNeighbor, nil
	case "invitation":
		return StrategyInvitation, nil
	}
	return StrategyNone, fmt.Errorf("netchord: unknown strategy %q", name)
}

// HostStats snapshots one host's cumulative activity.
type HostStats struct {
	// Consumed is the cumulative task units consumed.
	Consumed uint64
	// Residual is the current residual workload across all vnodes.
	Residual uint64
	// FirstBusyTick and LastBusyTick bracket the host's busy interval
	// (both 0 until work first arrives).
	FirstBusyTick, LastBusyTick int
	// Sybils is the current live Sybil count.
	Sybils int
	// Injections counts Sybils this host created over its lifetime.
	Injections int
	// Churns counts leave/rejoin cycles (induced-churn strategy).
	Churns int
	// InvitesSent and InvitesAccepted count invitation traffic from the
	// overloaded side.
	InvitesSent, InvitesAccepted int64
	// Helped counts invitations this host accepted as the helper.
	Helped int64
	// Evictions counts identities this host retired in response to
	// density-defense TEvict notices (docs/ADVERSARY.md). On an honest
	// host every one of these is defense collateral: the balancing
	// strategies mint dense IDs by design.
	Evictions int
}

// Host is one physical machine in the networked runtime: a primary
// virtual node plus up to MaxSybils Sybil identities, a per-tick
// consume loop, a consume-report stream to the collector, and one of
// the paper's strategies run as a local decision rule every
// DecisionEveryTicks ticks.
//
// The Host is the networked analogue of the simulator's host: where the
// simulator's engine calls strategy.Decide over global state, each Host
// here acts alone on what it can observe over the wire — its own
// workload, its nodes' successor/predecessor windows, and replies to
// the workload/invite messages it sends.
type Host struct {
	cfg       Config
	tr        Transport
	nf        *NetFaults
	index     int
	strategy  Strategy
	rng       *xrand.Rand
	hostID    ids.ID // stable across churn; keys collector records
	collector string // collector address ("" = no reporting)
	ctl       *peerPool

	mu        sync.Mutex
	primary   *Node
	sybils    []*Node
	consumed  uint64
	firstBusy int
	lastBusy  int
	everBusy  bool
	tick      int
	helping   bool // an accepted invitation's injection is in flight
	evicting  bool // a TEvict-induced retirement is in flight
	injects   int
	churns    int
	evicts    int
	down      bool

	invitesSent, invitesAccepted, helped int64

	// sybilSeq feeds jitterID; atomic because considerInvite injects
	// from a server-handler goroutine, off the host loop (where h.rng
	// lives and must stay).
	sybilSeq atomic.Uint64

	// Storage counters, cumulative across churn: nodes mirror their
	// per-identity counters here because induced churn replaces the
	// identity (and its counters) wholesale, and the collector needs
	// monotone per-host series.
	stAcked       atomic.Int64 // durably acknowledged owner writes
	stAntiRounds  atomic.Int64 // anti-entropy passes started
	stAntiRepairs atomic.Int64 // records pushed or pulled by anti-entropy
	stAntiBytes   atomic.Int64 // value bytes moved by anti-entropy

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// NewHost boots one host: it creates the primary node under a
// deterministic per-host RNG stream, creates a fresh ring when joinAddr
// is empty or joins through it otherwise, and starts the node's server
// loops. Call Start to begin consuming, reporting, and deciding.
// collectorAddr may be empty (no reports). nf may be nil (no faults).
func NewHost(cfg Config, tr Transport, nf *NetFaults, index int, strat Strategy, seed uint64, joinAddr, collectorAddr string) (*Host, error) {
	cfg = cfg.WithDefaults()
	h := &Host{
		cfg:       cfg,
		tr:        tr,
		nf:        nf,
		index:     index,
		strategy:  strat,
		rng:       xrand.NewStream(seed, index),
		collector: collectorAddr,
		closed:    make(chan struct{}),
	}
	h.hostID = ids.Random(h.rng)
	// Collector traffic is control-plane/observability, not protocol
	// traffic: it bypasses the fault layer so measurements survive the
	// faults they measure.
	h.ctl = newPeerPool(tr, cfg, nil, func() ids.ID { return h.hostID })
	n, err := NewNode(cfg, tr, nf, ids.Random(h.rng), "")
	if err != nil {
		return nil, err
	}
	n.host = h
	n.ev = h
	if joinAddr == "" {
		n.Create()
	} else if err := n.Join(joinAddr); err != nil {
		n.Close()
		return nil, err
	}
	n.Start()
	h.primary = n
	return h, nil
}

// Start launches the host loop (consume, report, decide).
func (h *Host) Start() {
	h.hello()
	h.wg.Add(1)
	go h.loop()
}

// Close stops the host loop and shuts down every virtual node.
func (h *Host) Close() {
	h.closeOnce.Do(func() { close(h.closed) })
	// down must be set before Wait: considerInvite checks it and calls
	// wg.Add under one h.mu critical section, so either it observes down
	// and bails, or its Add is ordered before this Wait — never an Add
	// racing a Wait that already saw a zero counter.
	h.mu.Lock()
	h.down = true
	h.mu.Unlock()
	h.wg.Wait()
	h.mu.Lock()
	nodes := h.nodesLocked()
	h.sybils = nil
	h.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
	h.ctl.close()
}

// Index returns the host's stable index.
func (h *Host) Index() int { return h.index }

// HostID returns the host's stable collector identity (distinct from
// any ring identity; it survives churn).
func (h *Host) HostID() ids.ID { return h.hostID }

// Primary returns the host's current primary node.
func (h *Host) Primary() *Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.primary
}

// Nodes returns the host's live virtual nodes, primary first.
func (h *Host) Nodes() []*Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nodesLocked()
}

// nodesLocked returns primary + sybils; callers hold h.mu.
func (h *Host) nodesLocked() []*Node {
	out := make([]*Node, 0, 1+len(h.sybils))
	if h.primary != nil {
		out = append(out, h.primary)
	}
	return append(out, h.sybils...)
}

// Workload sums residual task units across the host's virtual nodes —
// the only load signal a real host has locally (§V).
func (h *Host) Workload() uint64 {
	var sum uint64
	for _, n := range h.Nodes() {
		sum += n.TaskUnits()
	}
	return sum
}

// Stats snapshots the host's counters.
func (h *Host) Stats() HostStats {
	residual := h.Workload()
	h.mu.Lock()
	defer h.mu.Unlock()
	return HostStats{
		Consumed:        h.consumed,
		Residual:        residual,
		FirstBusyTick:   h.firstBusy,
		LastBusyTick:    h.lastBusy,
		Sybils:          len(h.sybils),
		Injections:      h.injects,
		Churns:          h.churns,
		InvitesSent:     h.invitesSent,
		InvitesAccepted: h.invitesAccepted,
		Helped:          h.helped,
		Evictions:       h.evicts,
	}
}

// loop is the host's heartbeat: one consume step per tick, a consume
// report every ReportEveryTicks, one strategy decision every
// DecisionEveryTicks. Decisions may block on RPCs; missed ticker beats
// are simply dropped, which is the honest cost of acting on a network.
func (h *Host) loop() {
	defer h.wg.Done()
	ticker := time.NewTicker(h.cfg.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-h.closed:
			h.report() // final report so the collector sees the end state
			return
		case <-ticker.C:
			h.mu.Lock()
			h.tick++
			tick := h.tick
			h.mu.Unlock()
			h.consumeTick(tick)
			if tick%h.cfg.ReportEveryTicks == 0 {
				h.report()
			}
			if tick%h.cfg.DecisionEveryTicks == 0 {
				h.decide()
			}
		}
	}
}

// consumeTick spends the host's per-tick compute budget across its
// virtual nodes, primary first (the uniform-host model: capacity
// belongs to the machine, not the identity).
func (h *Host) consumeTick(tick int) {
	budget := uint64(h.cfg.ConsumePerTick)
	var done uint64
	for _, n := range h.Nodes() {
		if done >= budget {
			break
		}
		done += n.consume(budget - done)
	}
	if done == 0 {
		return
	}
	h.mu.Lock()
	h.consumed += done
	if !h.everBusy {
		h.everBusy = true
		h.firstBusy = tick
	}
	h.lastBusy = tick
	h.mu.Unlock()
}

// hello registers the host (and its capacity) with the collector.
func (h *Host) hello() {
	if h.collector == "" {
		return
	}
	_, _ = h.ctl.call(wire.NodeRef{Addr: h.collector}, &wire.Msg{
		Type: wire.THello,
		From: wire.NodeRef{ID: h.hostID, Addr: h.Primary().Addr()},
		A:    uint64(h.cfg.ConsumePerTick),
	})
}

// report streams the host's consumption state to the collector:
// A = cumulative consumed, B = residual, C/D = first/last busy tick.
func (h *Host) report() {
	if h.collector == "" {
		return
	}
	residual := h.Workload()
	h.mu.Lock()
	m := &wire.Msg{
		Type: wire.TConsumeReport,
		From: wire.NodeRef{ID: h.hostID},
		A:    h.consumed,
		B:    residual,
		C:    uint64(h.firstBusy),
		D:    uint64(h.lastBusy),
	}
	h.mu.Unlock()
	_, _ = h.ctl.call(wire.NodeRef{Addr: h.collector}, m)
	// The storage companion report: durable acks and anti-entropy
	// repair totals, cumulative across churn (host atomics, not node
	// counters).
	_, _ = h.ctl.call(wire.NodeRef{Addr: h.collector}, &wire.Msg{
		Type: wire.TStoreReport,
		From: wire.NodeRef{ID: h.hostID},
		A:    uint64(h.stAcked.Load()),
		B:    uint64(h.stAntiRounds.Load()),
		C:    uint64(h.stAntiRepairs.Load()),
		D:    uint64(h.stAntiBytes.Load()),
	})
}

// reportInject tells the collector a Sybil was born and what it took.
func (h *Host) reportInject(sybil wire.NodeRef, acquired uint64) {
	if h.collector == "" {
		return
	}
	_, _ = h.ctl.call(wire.NodeRef{Addr: h.collector}, &wire.Msg{
		Type: wire.TInject,
		From: wire.NodeRef{ID: h.hostID},
		Node: sybil,
		A:    acquired,
	})
}

// decide runs one strategy decision. It executes on the host loop
// goroutine and may perform RPCs; it never holds h.mu across a call.
func (h *Host) decide() {
	switch h.strategy {
	case StrategyChurn:
		h.decideChurn()
	case StrategyRandom:
		h.decideRandom()
	case StrategyNeighbor:
		h.decideNeighbor()
	case StrategyInvitation:
		h.decideInvitation()
	}
}

// decideChurn is induced churn as a local rule: with probability
// ChurnProb per decision pass the host leaves gracefully (handing its
// keys and residual work to its successor) and rejoins under a fresh
// identifier. Re-entering uniformly at random lands in large (hence
// probably loaded) arcs with high probability — the paper's §IV-A
// observation that turnover alone redistributes load.
func (h *Host) decideChurn() {
	if !h.rng.Bool(h.cfg.ChurnProb) {
		return
	}
	h.churnPrimary()
}

// churnPrimary executes one leave/rejoin cycle of the primary under a
// fresh identifier: the body of the induced-churn rule, shared with the
// density defense (considerEvict), which retires a flagged primary by
// forcing exactly this cycle — eviction is churn the network imposes
// rather than the strategy chooses.
func (h *Host) churnPrimary() {
	h.mu.Lock()
	primary := h.primary
	h.mu.Unlock()
	if primary == nil {
		return
	}
	// Remember where to re-enter before the node departs.
	vias := primary.SuccessorList()
	if len(vias) == 0 || vias[0].ID == primary.ID() {
		return // alone on the ring: churn is a no-op
	}
	// Leave may fail to place some state (every successor itself
	// mid-leave, say); the leftovers are re-owned by the next identity
	// below, so churn never loses work.
	recs, tasks, _ := primary.leaveRemainder()
	var next *Node
	for _, via := range vias {
		n, err := NewNode(h.cfg, h.tr, h.nf, ids.Random(h.rng), "")
		if err != nil {
			continue
		}
		n.host = h
		n.ev = h
		if err := n.Join(via.Addr); err != nil {
			n.Close()
			continue
		}
		next = n
		break
	}
	if next == nil {
		// Every rejoin path failed (e.g. mid-partition): restart alone
		// so the host keeps serving; the graveyard probes re-merge the
		// rings after heal.
		n, err := NewNode(h.cfg, h.tr, h.nf, ids.Random(h.rng), "")
		if err != nil {
			return
		}
		n.host = h
		n.ev = h
		n.Create()
		next = n
	}
	next.mu.Lock()
	for _, tk := range tasks {
		next.addTaskLocked(tk.Key, tk.Units)
	}
	next.mu.Unlock()
	if _, err := next.st.ApplyAll(storeRecs(recs)); err != nil {
		// Surviving replicas still hold these records; anti-entropy
		// re-converges the set even if the re-own write fails.
		next.replicaErrs.Add(1)
	}
	next.Start()
	h.mu.Lock()
	h.primary = next
	h.churns++
	h.mu.Unlock()
}

// decideRandom is random injection: withdraw Sybils that ended up with
// nothing, then (if still idle and under the cap) inject one Sybil at a
// uniformly random identifier — one per decision, as §IV-B prescribes.
func (h *Host) decideRandom() {
	h.dropIdleSybils()
	if !h.idle() || !h.canSybil() {
		return
	}
	_, _ = h.injectSybil(ids.Random(h.rng), h.Primary().Addr())
}

// decideNeighbor is neighbor injection: estimate the most-loaded
// neighbor as the successor owning the largest arc (no workload
// queries needed) and split that arc at its midpoint.
func (h *Host) decideNeighbor() {
	if !h.idle() || !h.canSybil() {
		return
	}
	primary := h.Primary()
	succs := primary.SuccessorList()
	own := make(map[ids.ID]struct{})
	for _, n := range h.Nodes() {
		own[n.ID()] = struct{}{}
	}
	var bestPrev, bestCur ids.ID
	var bestArc ids.ID
	found := false
	prev := primary.ID()
	for _, s := range succs {
		if _, mine := own[s.ID]; !mine {
			arc := prev.Distance(s.ID)
			if !found || bestArc.Less(arc) {
				bestPrev, bestCur, bestArc = prev, s.ID, arc
				found = true
			}
		}
		prev = s.ID
	}
	if !found {
		return
	}
	_, _ = h.injectSybil(h.jitterID(ids.Midpoint(bestPrev, bestCur)), primary.Addr())
}

// jitterID perturbs the low 64 bits of id with the host's stable
// identity and a per-host sequence number. Arc midpoints are symmetric:
// two idle hosts observing the same loaded arc compute the *same*
// midpoint, and concurrent joins under one identifier wedge the ring
// permanently (duplicate IDs break the successor ordering every
// stabilization relies on). The perturbation is at most 2^64 of a
// 2^ids.Bits space — invisible at arc scale, decisive for uniqueness.
func (h *Host) jitterID(id ids.ID) ids.ID {
	salt := binary.BigEndian.Uint64(h.hostID[len(h.hostID)-8:]) + h.sybilSeq.Add(1)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], salt)
	for i := 0; i < 8; i++ {
		id[len(id)-8+i] ^= b[i]
	}
	return id
}

// decideInvitation is the overloaded side of §IV-D: a primary above the
// invite threshold walks its predecessor chain and invites each in turn
// until one agrees to help (the helper injects the Sybil; see
// considerInvite).
func (h *Host) decideInvitation() {
	primary := h.Primary()
	load := primary.TaskUnits()
	if load <= h.cfg.InviteThreshold {
		return
	}
	pred, ok := primary.Predecessor()
	if !ok || pred.ID == primary.ID() {
		return
	}
	cur := pred
	for i := 0; i < h.cfg.SuccessorListLen; i++ {
		if cur.Addr == "" || cur.ID == primary.ID() {
			return
		}
		h.mu.Lock()
		h.invitesSent++
		h.mu.Unlock()
		reply, err := primary.pool.call(cur, &wire.Msg{
			Type: wire.TInvite,
			From: primary.Ref(),
			Node: pred,
			A:    load,
		})
		if err == nil && reply.Flag {
			h.mu.Lock()
			h.invitesAccepted++
			h.mu.Unlock()
			return
		}
		// Walk one predecessor further back and ask again.
		prReply, err := primary.pool.call(cur, &wire.Msg{Type: wire.TGetPred})
		if err != nil || !prReply.Flag {
			return
		}
		cur = prReply.Node
	}
}

// considerInvite is the helper side of the invitation strategy, called
// from a node's request handler. It answers immediately (accept or
// refuse) and performs the injection on its own goroutine so the
// server never blocks on a join handshake.
func (h *Host) considerInvite(req *wire.Msg) bool {
	if req.From.Addr == "" || req.Node.Addr == "" {
		return false
	}
	if !h.idle() || !h.canSybil() {
		return false
	}
	h.mu.Lock()
	if h.helping || h.down {
		h.mu.Unlock()
		return false
	}
	h.helping = true
	// Add inside the critical section that checked down: pairs with the
	// down-before-Wait ordering in Close to keep the WaitGroup race-free.
	h.wg.Add(1)
	h.mu.Unlock()
	// Jitter the midpoint: several helpers may accept invitations into
	// the same arc concurrently, and they must not collide on one ID.
	mid := h.jitterID(ids.Midpoint(req.Node.ID, req.From.ID))
	via := req.From.Addr
	go func() {
		defer h.wg.Done()
		defer func() {
			h.mu.Lock()
			h.helping = false
			h.mu.Unlock()
		}()
		if _, err := h.injectSybil(mid, via); err == nil {
			h.mu.Lock()
			h.helped++
			h.mu.Unlock()
		}
	}()
	return true
}

// considerEvict is the honest host's response to a density eviction
// notice naming one of its identities, called from the node's request
// handler. It answers immediately and does the retirement on its own
// goroutine (the same discipline as considerInvite): a flagged Sybil
// leaves gracefully, a flagged primary re-keys through one induced
// churn cycle — the host stays alive either way, only the improbably
// placed identity dies. One retirement at a time: a cluster triggers a
// burst of notices from every scanning neighbor, and retiring one
// identity per burst already moves the flagged window.
func (h *Host) considerEvict(n *Node) {
	h.mu.Lock()
	if h.evicting || h.down {
		h.mu.Unlock()
		return
	}
	isPrimary := h.primary == n
	if !isPrimary {
		idx := -1
		for i, s := range h.sybils {
			if s == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			h.mu.Unlock()
			return // stale notice: the identity is already gone
		}
		h.sybils = append(h.sybils[:idx], h.sybils[idx+1:]...)
	}
	h.evicting = true
	h.evicts++
	// Add inside the critical section that checked down: pairs with the
	// down-before-Wait ordering in Close to keep the WaitGroup race-free.
	h.wg.Add(1)
	h.mu.Unlock()
	go func() {
		defer h.wg.Done()
		defer func() {
			h.mu.Lock()
			h.evicting = false
			h.mu.Unlock()
		}()
		if isPrimary {
			h.churnPrimary()
		} else {
			_ = n.Leave()
		}
	}()
}

// idle reports whether the host's residual workload is at or below the
// Sybil threshold (the "under-utilized" test used by every strategy).
func (h *Host) idle() bool { return h.Workload() <= h.cfg.SybilThreshold }

// canSybil reports whether the host is under its Sybil cap.
func (h *Host) canSybil() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sybils) < h.cfg.MaxSybils && !h.down
}

// injectSybil projects a Sybil identity at id, joining through via, and
// reports the birth (and the work it acquired) to the collector.
func (h *Host) injectSybil(id ids.ID, via string) (*Node, error) {
	n, err := NewNode(h.cfg, h.tr, h.nf, id, "")
	if err != nil {
		return nil, err
	}
	n.host = h
	n.ev = h
	if err := n.Join(via); err != nil {
		n.Close()
		return nil, err
	}
	acquired := n.TaskUnits()
	n.Start()
	h.mu.Lock()
	if h.down {
		h.mu.Unlock()
		n.Close()
		return nil, ErrClosed
	}
	h.sybils = append(h.sybils, n)
	h.injects++
	h.mu.Unlock()
	h.reportInject(n.Ref(), acquired)
	return n, nil
}

// dropIdleSybils withdraws every Sybil when the whole host is out of
// work (their arcs yielded nothing, or it was all consumed), freeing
// the identities so a later pass can re-roll fresh locations.
func (h *Host) dropIdleSybils() {
	if h.Workload() != 0 {
		return
	}
	h.mu.Lock()
	if len(h.sybils) == 0 {
		h.mu.Unlock()
		return
	}
	drop := h.sybils
	h.sybils = nil
	h.mu.Unlock()
	for _, s := range drop {
		_ = s.Leave()
	}
}
