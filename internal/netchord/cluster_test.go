package netchord

import (
	"testing"
	"time"

	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
	"chordbalance/internal/xrand"
)

// clusterConfig is the fast clock used by the cluster tests.
func clusterConfig() Config {
	return Config{TickEvery: 2 * time.Millisecond, InviteThreshold: 8}.WithDefaults()
}

// awaitProgress polls the collector until the cluster has consumed at
// least want units with nothing residual, or the deadline passes.
func awaitProgress(t *testing.T, c *Cluster, want uint64, timeout time.Duration) Progress {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		p := c.Collector().Progress()
		if p.Consumed >= want && p.Residual == 0 {
			return p
		}
		if time.Now().After(deadline) {
			t.Fatalf("workload incomplete after %v: %+v", timeout, p)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCluster16Invitation is the 16-node loopback satellite: start,
// join, converge, run the invitation strategy to completion under frame
// loss and a mid-run partition, and assert the lookup success rate is
// exactly 1.0 after the partition heals.
func TestCluster16Invitation(t *testing.T) {
	cfg := clusterConfig()
	nf, err := NewNetFaults(faults.Plan{Seed: 21, DropRate: 0.02}, cfg.TickEvery)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(cfg, NewPipeTransport(), nf, 16, StrategyInvitation, 77, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	if !c.AwaitConverged(60 * time.Second) {
		t.Fatal("16-node ring did not converge")
	}

	// Durable keys, replicated, written before any trouble starts.
	rng := xrand.New(123)
	keys := make([]ids.ID, 32)
	for i := range keys {
		keys[i] = ids.Random(rng)
		if err := c.Hosts()[i%16].Primary().Put(keys[i], []byte{byte(i)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// The paper's skewed workload: every task unit lands in one arc, so
	// a single primary starts with all the work and must invite helpers.
	target := c.Hosts()[5].Primary()
	pred, ok := target.Predecessor()
	if !ok {
		t.Fatal("target has no predecessor after convergence")
	}
	const units = 1024
	submitted := uint64(0)
	for submitted < units {
		key, err := ids.UniformInRange(rng, pred.ID, target.ID())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Hosts()[0].Primary().SubmitTask(key, 8); err != nil {
			t.Fatalf("submit: %v", err)
		}
		submitted += 8
	}

	// Partition a quarter of the identifier space mid-run, let the
	// strategies fight through it, then heal.
	if err := nf.ForcePartition(0.25); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	nf.Heal()

	p := awaitProgress(t, c, units, 90*time.Second)
	if rf := p.RuntimeFactor(units); rf <= 0 {
		t.Fatalf("runtime factor not computed: %+v", p)
	}
	if p.Injections == 0 {
		t.Fatal("invitation strategy never injected a Sybil into the loaded arc")
	}

	// After heal the ring must re-converge and every lookup and every
	// stored key must succeed: success rate exactly 1.0.
	if !c.AwaitConverged(60 * time.Second) {
		t.Fatal("ring did not re-converge after heal")
	}
	lookups, ok := 0, true
	for _, h := range c.Hosts() {
		for trial := 0; trial < 4; trial++ {
			if _, _, err := h.Primary().Lookup(ids.Random(rng)); err != nil {
				t.Errorf("lookup from host %d failed after heal: %v", h.Index(), err)
				ok = false
			}
			lookups++
		}
	}
	for i, k := range keys {
		if _, err := c.Hosts()[(i+7)%16].Primary().Get(k); err != nil {
			t.Errorf("key %s unreadable after heal: %v", k.Short(), err)
			ok = false
		}
		lookups++
	}
	if !ok {
		t.Fatalf("lookup success rate < 1.0 over %d lookups after heal", lookups)
	}
}

func TestClusterNeighborInjection(t *testing.T) {
	// Idle hosts inject from the first decision pass, so membership
	// keeps growing until every host hits its Sybil cap; keep the cap
	// small so the ring can settle.
	cfg := clusterConfig()
	cfg.MaxSybils = 2
	c, err := NewCluster(cfg, NewPipeTransport(), nil, 4, StrategyNeighbor, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if !c.AwaitConverged(60 * time.Second) {
		t.Fatal("ring did not converge")
	}

	// Load one arc; the idle neighbors should split it.
	target := c.Hosts()[2].Primary()
	pred, _ := target.Predecessor()
	rng := xrand.New(4)
	const units = 256
	for submitted := 0; submitted < units; submitted += 4 {
		key, err := ids.UniformInRange(rng, pred.ID, target.ID())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Hosts()[0].Primary().SubmitTask(key, 4); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	p := awaitProgress(t, c, units, 60*time.Second)
	if p.Injections == 0 {
		t.Fatal("neighbor strategy never injected a Sybil")
	}
}

func TestClusterRandomInjectionAndWithdraw(t *testing.T) {
	cfg := clusterConfig()
	c, err := NewCluster(cfg, NewPipeTransport(), nil, 4, StrategyRandom, 13, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if !c.AwaitConverged(30 * time.Second) {
		t.Fatal("ring did not converge")
	}
	target := c.Hosts()[1].Primary()
	pred, _ := target.Predecessor()
	rng := xrand.New(6)
	const units = 256
	for submitted := 0; submitted < units; submitted += 4 {
		key, err := ids.UniformInRange(rng, pred.ID, target.ID())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Hosts()[3].Primary().SubmitTask(key, 4); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	p := awaitProgress(t, c, units, 60*time.Second)
	if p.Injections == 0 {
		t.Fatal("random strategy never injected a Sybil")
	}
}

func TestClusterChurnConservesWork(t *testing.T) {
	cfg := clusterConfig()
	// Hosts churn from their first decision pass, and the convergence
	// oracle needs a fully settled moment to observe; keep the churn
	// rate low enough that such moments exist between departures.
	cfg.ChurnProb = 0.02
	c, err := NewCluster(cfg, NewPipeTransport(), nil, 4, StrategyChurn, 17, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if !c.AwaitConverged(30 * time.Second) {
		t.Fatal("ring did not converge")
	}
	rng := xrand.New(8)
	const units = 512
	for submitted := 0; submitted < units; submitted += 8 {
		if err := c.Hosts()[0].Primary().SubmitTask(ids.Random(rng), 8); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	// Churn hands residual work to successors on every departure; the
	// collector must still account for every unit at completion.
	awaitProgress(t, c, units, 90*time.Second)
	churns := 0
	for _, h := range c.Hosts() {
		churns += h.Stats().Churns
	}
	if churns == 0 {
		t.Fatal("induced-churn strategy never churned")
	}
}
