package netchord

import (
	"errors"
	"testing"
	"time"

	"chordbalance/internal/adversary"
	"chordbalance/internal/wire"
)

// TestJoinPuzzleGate checks puzzle-cost admission on the live join
// path: a ring running with PuzzleBits set forms normally (the honest
// path solves the puzzle transparently inside Join), while a hand-built
// TJoin carrying a bogus nonce is refused outright.
func TestJoinPuzzleGate(t *testing.T) {
	cfg := testConfig()
	cfg.PuzzleBits = 8
	tr := NewPipeTransport()
	nodes := startRing(t, tr, cfg, 3) // forming at all proves honest admission
	awaitRing(t, cfg, nodes, 30*time.Second)

	outsider, err := NewNode(cfg, tr, nil, adversary.IDAtFraction(0.42), "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(outsider.Close)
	bad := uint64(0)
	for adversary.VerifyPuzzle(outsider.ID(), bad, cfg.PuzzleBits) {
		bad++
	}
	_, err = outsider.pool.call(nodes[0].Ref(), &wire.Msg{Type: wire.TJoin, From: outsider.ref, A: bad})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("unsolved join puzzle not refused: err = %v", err)
	}
}

// attackPlan is the shared attack dose for the live eclipse tests: six
// hostile identities aimed at one eighth of the ring, with enough work
// per tick that puzzle-free minting is instant.
func attackPlan() adversary.AttackConfig {
	return adversary.AttackConfig{
		Budget:      6,
		MintEvery:   1,
		TargetStart: 0.2,
		TargetWidth: 1.0 / 8,
		WorkRate:    300,
	}
}

// runAttack boots a StrategyNone cluster under cfg, points an
// AttackHost at it, and samples MeasureEclipse until either the
// predicate is satisfied or the timeout passes. It returns the last
// observed eclipse fraction and the attacker's final stats.
func runAttack(t *testing.T, cfg Config, timeout time.Duration, done func(eclipse float64, st AttackStats) bool) (float64, AttackStats) {
	t.Helper()
	c, err := NewCluster(cfg, NewPipeTransport(), nil, 10, StrategyNone, 77, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if !c.AwaitConverged(60 * time.Second) {
		t.Fatal("10-node ring did not converge")
	}
	a, err := NewAttackHost(cfg, c.tr, nil, attackPlan(), 5, c.SeedAddr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	lo, hi := a.Target()
	a.Start()

	deadline := time.Now().Add(timeout)
	eclipse := 0.0
	for {
		honest := make([]*Node, 0, 16)
		for _, h := range c.Hosts() {
			honest = append(honest, h.Nodes()...)
		}
		eclipse = MeasureEclipse(honest, a.Nodes(), lo, hi, cfg.Replicas)
		if done(eclipse, a.Stats()) || time.Now().After(deadline) {
			return eclipse, a.Stats()
		}
		time.Sleep(10 * cfg.TickEvery)
	}
}

// TestEclipseSuppressedByDefense is the live half of the sybilwar
// acceptance criterion: the same attack dose that eclipses part of the
// target arc on an undefended cluster is measurably suppressed when the
// cluster turns on puzzle admission and the density scan — hostile
// identities actually get evicted over the wire, and the eclipse the
// attacker can hold stays strictly below the undefended mark.
func TestEclipseSuppressedByDefense(t *testing.T) {
	if testing.Short() {
		t.Skip("two live clusters in -short mode")
	}
	cfg := clusterConfig()
	undefEclipse, undefStats := runAttack(t, cfg, 45*time.Second,
		func(e float64, _ AttackStats) bool { return e > 0 })
	if undefEclipse <= 0 {
		t.Fatalf("undefended attack achieved no eclipse: %+v", undefStats)
	}
	if undefStats.Minted == 0 {
		t.Fatalf("undefended attack minted nothing: %+v", undefStats)
	}

	dcfg := clusterConfig()
	dcfg.PuzzleBits = 10 // mint cost 1025 vs WorkRate 300: ~1 identity per 4 ticks
	dcfg.DensityThreshold = 8
	dcfg.DensityWindow = 4
	dcfg.DensityEveryTicks = 4 // scan every stabilize round
	// Run until the defense has demonstrably fired a few times, then take
	// the eclipse reading of that moment.
	defEclipse, defStats := runAttack(t, dcfg, 45*time.Second,
		func(e float64, st AttackStats) bool { return st.Evicted >= 3 && e < undefEclipse })
	if defStats.Evicted == 0 {
		t.Errorf("defense never evicted a hostile identity: %+v", defStats)
	}
	if defEclipse >= undefEclipse {
		t.Errorf("defense did not suppress the eclipse: defended %.4f >= undefended %.4f (stats %+v)",
			defEclipse, undefEclipse, defStats)
	}
}
