package netchord

import "testing"

// TestCollectorStreamReports exercises the streaming read-path metrics
// end to end over the wire: clients push cumulative TStreamReports
// (overwrite semantics, several clients aggregate), and TStats returns
// the full blob that TProgressOK cannot carry.
func TestCollectorStreamReports(t *testing.T) {
	tr := NewPipeTransport()
	cfg := Config{}.WithDefaults()
	col, err := NewCollector(cfg, tr, "collector", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	a := NewClient(cfg, tr, "unused", 1)
	defer a.Close()
	b := NewClient(cfg, tr, "unused", 2)
	defer b.Close()
	if a.ID() == b.ID() {
		t.Fatal("distinct seeds produced the same client identity")
	}

	// Cumulative reports overwrite: the second report from client a
	// replaces the first rather than adding to it.
	if err := a.ReportStream(col.Addr(), 10, 1, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if err := a.ReportStream(col.Addr(), 25, 2, 1, 2500); err != nil {
		t.Fatal(err)
	}
	if err := b.ReportStream(col.Addr(), 5, 0, 0, 500); err != nil {
		t.Fatal(err)
	}

	p := col.Progress()
	if p.StreamChunks != 30 || p.StreamDeadlineMiss != 2 || p.StreamRebuffers != 1 || p.StreamBytes != 3000 {
		t.Fatalf("aggregated stream counters wrong: %+v", p)
	}

	// The wire view must agree with the in-process view, stream and
	// store counters included.
	got, err := FetchStats(tr, cfg, col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got.StreamChunks != p.StreamChunks || got.StreamDeadlineMiss != p.StreamDeadlineMiss ||
		got.StreamRebuffers != p.StreamRebuffers || got.StreamBytes != p.StreamBytes {
		t.Fatalf("FetchStats disagrees with Progress: got %+v want %+v", got, p)
	}

	// TProgress still answers (old pollers keep working), without the
	// stream counters it cannot carry.
	if _, err := FetchProgress(tr, cfg, col.Addr()); err != nil {
		t.Fatal(err)
	}

	// Stats round-trips the Progress exactly for every field both carry.
	if back := progressFromStats(p.Stats()); back != p {
		t.Fatalf("Stats round trip mismatch: %+v != %+v", back, p)
	}

	// Pin the read-work default: zero, reads stay free unless asked.
	if cfg.ReadWorkUnits != 0 {
		t.Fatalf("ReadWorkUnits default must be 0, got %d", cfg.ReadWorkUnits)
	}
}
