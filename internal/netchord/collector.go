package netchord

import (
	"net"
	"sort"
	"sync"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/obs"
	"chordbalance/internal/wire"
)

// Progress is the collector's cluster-wide view, assembled from the
// hosts' consume reports. It is what the simulator gets for free from
// its global tick loop and what a deployment has to gather over the
// wire.
type Progress struct {
	// Hosts is how many hosts have said hello.
	Hosts int
	// Consumed is the summed cumulative units consumed.
	Consumed uint64
	// Residual is the summed residual units from each host's latest
	// report.
	Residual uint64
	// BusyTicks is the busy-interval length of the slowest host — the
	// networked analogue of the simulator's completion tick.
	BusyTicks int
	// Capacity is the summed per-tick consume capacity.
	Capacity uint64
	// Injections counts Sybil births reported, and InjectedUnits the
	// task units those Sybils acquired at birth.
	Injections int
	// InjectedUnits sums the units acquired by Sybils at birth.
	InjectedUnits uint64
	// Reports counts consume reports received.
	Reports int64
	// Acked is the summed durably acknowledged owner writes.
	Acked int64
	// AntiEntropyRounds is the summed anti-entropy passes started.
	AntiEntropyRounds int64
	// AntiEntropyRepairs is the summed records pushed or pulled by
	// anti-entropy reconciliation.
	AntiEntropyRepairs int64
	// AntiEntropyBytes is the summed value bytes anti-entropy moved.
	AntiEntropyBytes int64
	// StreamChunks is the summed chunks delivered to streaming viewers
	// (TStreamReport), and the Stream* fields below its companions. A
	// streaming client is not a host: these aggregate over registered
	// clients, keyed by their synthetic identities.
	StreamChunks uint64
	// StreamDeadlineMiss is the summed chunk deadline misses.
	StreamDeadlineMiss uint64
	// StreamRebuffers is the summed viewer rebuffer events.
	StreamRebuffers uint64
	// StreamBytes is the summed value bytes delivered to viewers.
	StreamBytes uint64
}

// Stats packs the progress view into the wire blob TStatsOK carries.
func (p Progress) Stats() wire.Stats {
	return wire.Stats{
		Hosts:              uint64(p.Hosts),
		Consumed:           p.Consumed,
		Residual:           p.Residual,
		BusyTicks:          uint64(p.BusyTicks),
		Capacity:           p.Capacity,
		Injections:         uint64(p.Injections),
		InjectedUnits:      p.InjectedUnits,
		Reports:            uint64(p.Reports),
		StoreAcked:         uint64(p.Acked),
		AntiEntropyRounds:  uint64(p.AntiEntropyRounds),
		AntiEntropyRepairs: uint64(p.AntiEntropyRepairs),
		AntiEntropyBytes:   uint64(p.AntiEntropyBytes),
		StreamChunks:       p.StreamChunks,
		StreamDeadlineMiss: p.StreamDeadlineMiss,
		StreamRebuffers:    p.StreamRebuffers,
		StreamBytes:        p.StreamBytes,
	}
}

// progressFromStats is the inverse of Progress.Stats, for FetchStats.
func progressFromStats(s wire.Stats) Progress {
	return Progress{
		Hosts:              int(s.Hosts),
		Consumed:           s.Consumed,
		Residual:           s.Residual,
		BusyTicks:          int(s.BusyTicks),
		Capacity:           s.Capacity,
		Injections:         int(s.Injections),
		InjectedUnits:      s.InjectedUnits,
		Reports:            int64(s.Reports),
		Acked:              int64(s.StoreAcked),
		AntiEntropyRounds:  int64(s.AntiEntropyRounds),
		AntiEntropyRepairs: int64(s.AntiEntropyRepairs),
		AntiEntropyBytes:   int64(s.AntiEntropyBytes),
		StreamChunks:       s.StreamChunks,
		StreamDeadlineMiss: s.StreamDeadlineMiss,
		StreamRebuffers:    s.StreamRebuffers,
		StreamBytes:        s.StreamBytes,
	}
}

// RuntimeFactor is the paper's headline metric (§V-C): the slowest
// host's busy time divided by the ideal completion time for submitted
// units spread perfectly over the cluster's capacity. 1.0 is perfect
// balance; higher is worse. It returns 0 until enough is known
// (no capacity, no busy host, or submitted == 0).
func (p Progress) RuntimeFactor(submitted uint64) float64 {
	if p.Capacity == 0 || p.BusyTicks == 0 || submitted == 0 {
		return 0
	}
	ideal := (submitted + p.Capacity - 1) / p.Capacity
	if ideal == 0 {
		return 0
	}
	return float64(p.BusyTicks) / float64(ideal)
}

// hostRecord is the collector's per-host state.
type hostRecord struct {
	capacity  uint64
	consumed  uint64
	residual  uint64
	firstBusy int
	lastBusy  int

	// Storage report state (TStoreReport): cumulative per host.
	acked      int64
	antiRounds int64
	antiReps   int64
	antiBytes  int64
}

// streamRecord is the collector's per-streaming-client state: the last
// cumulative TStreamReport from one load generator. Clients are keyed
// by the synthetic identity their reports carry, so several dhtload
// -stream processes aggregate without double counting.
type streamRecord struct {
	chunks    uint64
	misses    uint64
	rebuffers uint64
	bytes     uint64
}

// Collector is the runtime's measurement sink: a small wire server that
// hosts register with (THello), stream consume reports to
// (TConsumeReport), and announce Sybil births to (TInject). Anyone may
// ask it for cluster-wide progress (TProgress), which is how dhtload
// detects workload completion and computes the runtime factor without
// global state in the data path.
//
// When constructed with a tracer, the collector doubles as the
// networked runtime's obs pipeline: every report updates per-cluster
// metrics and emits one tick record keyed by the collector's own fault
// clock, so `dhttrace`-style tooling reads networked runs the same way
// it reads simulator runs.
type Collector struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	hosts    map[ids.ID]*hostRecord
	order    []ids.ID // hello order, for deterministic iteration
	streams  map[ids.ID]*streamRecord
	strOrder []ids.ID
	injects  int
	units    uint64
	reports  int64

	tracer     *obs.Tracer
	mConsumed  *obs.Counter
	mReports   *obs.Counter
	mInjects   *obs.Counter
	mResidual  *obs.Gauge
	mBusyTicks *obs.Gauge
	mHosts     *obs.Gauge
	mAcked     *obs.Counter
	mAntiRound *obs.Counter
	mAntiReps  *obs.Counter
	mAntiBytes *obs.Counter
	hRepair    *obs.Histogram
	mStrChunks *obs.Counter
	mStrMiss   *obs.Counter
	mStrRebuf  *obs.Counter
	mStrBytes  *obs.Counter
	start      time.Time

	conns     map[net.Conn]struct{}
	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// NewCollector opens the collector's listener on addr ("" = auto) and
// starts serving. tracer may be nil (no trace output).
func NewCollector(cfg Config, tr Transport, addr string, tracer *obs.Tracer) (*Collector, error) {
	cfg = cfg.WithDefaults()
	ln, err := tr.Listen(addr)
	if err != nil {
		return nil, err
	}
	c := &Collector{
		cfg:     cfg,
		ln:      ln,
		hosts:   make(map[ids.ID]*hostRecord),
		streams: make(map[ids.ID]*streamRecord),
		tracer:  tracer,
		start:   time.Now(),
		conns:   make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
	}
	if tracer != nil {
		reg := tracer.Registry()
		c.mConsumed = reg.Counter("net.consumed", "tasks", "cumulative task units consumed across hosts")
		c.mReports = reg.Counter("net.reports", "msgs", "consume reports received")
		c.mInjects = reg.Counter("net.injections", "sybils", "Sybil births reported")
		c.mResidual = reg.Gauge("net.residual", "tasks", "summed residual task units")
		c.mBusyTicks = reg.Gauge("net.busy_ticks", "ticks", "busy interval of the slowest host")
		c.mHosts = reg.Gauge("net.hosts", "hosts", "hosts registered")
		c.mAcked = reg.Counter("net.store.acked", "writes", "durably acknowledged owner writes")
		c.mAntiRound = reg.Counter("net.store.anti_rounds", "rounds", "anti-entropy passes started")
		c.mAntiReps = reg.Counter("net.store.anti_repairs", "recs", "records repaired by anti-entropy")
		c.mAntiBytes = reg.Counter("net.store.anti_bytes", "bytes", "value bytes moved by anti-entropy")
		c.hRepair = reg.Histogram("net.store.repair_batch", "recs",
			"records repaired per store report interval", obs.LogEdges(1<<20, 4))
		c.mStrChunks = reg.Counter("net.stream.chunks", "chunks", "chunks delivered to streaming viewers")
		c.mStrMiss = reg.Counter("net.stream.deadline_miss", "chunks", "chunk deadline misses")
		c.mStrRebuf = reg.Counter("net.stream.rebuffers", "events", "viewer rebuffer events")
		c.mStrBytes = reg.Counter("net.stream.bytes", "bytes", "value bytes delivered to viewers")
		tracer.EmitMeta(obs.F{K: "source", V: "netchord-collector"})
		tracer.EmitSchema()
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the collector's listen address.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// Close shuts the collector down and flushes the tracer.
func (c *Collector) Close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		_ = c.ln.Close()
		c.mu.Lock()
		for conn := range c.conns {
			_ = conn.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tracer != nil {
		p := c.progressLocked()
		c.tracer.Emit("done",
			obs.F{K: "hosts", V: p.Hosts},
			obs.F{K: "consumed", V: p.Consumed},
			obs.F{K: "residual", V: p.Residual},
			obs.F{K: "busy_ticks", V: p.BusyTicks},
			obs.F{K: "injections", V: p.Injections},
		)
		_ = c.tracer.Close()
		c.tracer = nil
	}
}

// Progress snapshots the cluster-wide view.
func (c *Collector) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.progressLocked()
}

// progressLocked assembles Progress; callers hold c.mu.
func (c *Collector) progressLocked() Progress {
	p := Progress{
		Hosts:         len(c.hosts),
		Injections:    c.injects,
		InjectedUnits: c.units,
		Reports:       c.reports,
	}
	for _, id := range c.order {
		r := c.hosts[id]
		p.Consumed += r.consumed
		p.Residual += r.residual
		p.Capacity += r.capacity
		p.Acked += r.acked
		p.AntiEntropyRounds += r.antiRounds
		p.AntiEntropyRepairs += r.antiReps
		p.AntiEntropyBytes += r.antiBytes
		if r.consumed > 0 {
			if busy := r.lastBusy - r.firstBusy + 1; busy > p.BusyTicks {
				p.BusyTicks = busy
			}
		}
	}
	for _, id := range c.strOrder {
		s := c.streams[id]
		p.StreamChunks += s.chunks
		p.StreamDeadlineMiss += s.misses
		p.StreamRebuffers += s.rebuffers
		p.StreamBytes += s.bytes
	}
	return p
}

// acceptLoop admits connections until the listener closes.
func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.serveConn(conn)
	}
}

// serveConn answers one connection's requests until error or shutdown.
func (c *Collector) serveConn(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		_ = conn.Close()
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()
	idle := c.cfg.Ticks(c.cfg.IdleConnTicks)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(idle)); err != nil {
			return
		}
		req, err := wire.ReadMsg(conn)
		if err != nil {
			return
		}
		reply := c.handle(req)
		reply.Req = req.Req
		if err := conn.SetWriteDeadline(time.Now().Add(c.cfg.rpcTimeout())); err != nil {
			return
		}
		if err := wire.WriteMsg(conn, reply); err != nil {
			return
		}
	}
}

// handle dispatches one collector request.
func (c *Collector) handle(req *wire.Msg) *wire.Msg {
	switch req.Type {
	case wire.TPing:
		return &wire.Msg{Type: wire.TPong}

	case wire.THello:
		c.mu.Lock()
		if _, known := c.hosts[req.From.ID]; !known {
			c.hosts[req.From.ID] = &hostRecord{}
			c.order = append(c.order, req.From.ID)
		}
		c.hosts[req.From.ID].capacity = req.A
		if c.mHosts != nil {
			c.mHosts.SetInt(int64(len(c.hosts)))
		}
		c.mu.Unlock()
		return &wire.Msg{Type: wire.TAck}

	case wire.TConsumeReport:
		c.mu.Lock()
		r := c.hosts[req.From.ID]
		if r == nil {
			r = &hostRecord{}
			c.hosts[req.From.ID] = r
			c.order = append(c.order, req.From.ID)
		}
		r.consumed = req.A
		r.residual = req.B
		r.firstBusy = int(req.C)
		r.lastBusy = int(req.D)
		c.reports++
		c.emitLocked()
		c.mu.Unlock()
		return &wire.Msg{Type: wire.TAck}

	case wire.TStoreReport:
		c.mu.Lock()
		r := c.hosts[req.From.ID]
		if r == nil {
			r = &hostRecord{}
			c.hosts[req.From.ID] = r
			c.order = append(c.order, req.From.ID)
		}
		// Repair-batch histogram: observe the per-interval delta, not
		// the cumulative counter, so the distribution reads "how much
		// did one report interval repair".
		if delta := int64(req.C) - r.antiReps; delta > 0 && c.hRepair != nil {
			c.hRepair.ObserveInt(int(delta))
		}
		r.acked = int64(req.A)
		r.antiRounds = int64(req.B)
		r.antiReps = int64(req.C)
		r.antiBytes = int64(req.D)
		c.emitLocked()
		c.mu.Unlock()
		return &wire.Msg{Type: wire.TAck}

	case wire.TStreamReport:
		c.mu.Lock()
		s := c.streams[req.From.ID]
		if s == nil {
			s = &streamRecord{}
			c.streams[req.From.ID] = s
			c.strOrder = append(c.strOrder, req.From.ID)
		}
		s.chunks = req.A
		s.misses = req.B
		s.rebuffers = req.C
		s.bytes = req.D
		c.emitLocked()
		c.mu.Unlock()
		return &wire.Msg{Type: wire.TAck}

	case wire.TStats:
		c.mu.Lock()
		s := c.progressLocked().Stats()
		c.mu.Unlock()
		return &wire.Msg{Type: wire.TStatsOK, Value: wire.AppendStats(nil, &s)}

	case wire.TInject:
		c.mu.Lock()
		c.injects++
		c.units += req.A
		c.emitLocked()
		c.mu.Unlock()
		return &wire.Msg{Type: wire.TAck}

	case wire.TProgress:
		c.mu.Lock()
		p := c.progressLocked()
		c.mu.Unlock()
		return &wire.Msg{
			Type: wire.TProgressOK,
			A:    p.Consumed,
			B:    p.Residual,
			C:    uint64(p.BusyTicks),
			D:    p.Capacity,
		}

	default:
		return errorMsg(CodeBadRequest, "unexpected collector message "+req.Type.String())
	}
}

// emitLocked refreshes the trace metrics and writes one tick record
// stamped with the collector's wall-clock tick; callers hold c.mu.
func (c *Collector) emitLocked() {
	if c.tracer == nil {
		return
	}
	p := c.progressLocked()
	c.mConsumed.Set(int64(p.Consumed))
	c.mReports.Set(p.Reports)
	c.mInjects.Set(int64(p.Injections))
	c.mResidual.SetInt(int64(p.Residual))
	c.mBusyTicks.SetInt(int64(p.BusyTicks))
	c.mHosts.SetInt(int64(p.Hosts))
	c.mAcked.Set(p.Acked)
	c.mAntiRound.Set(p.AntiEntropyRounds)
	c.mAntiReps.Set(p.AntiEntropyRepairs)
	c.mAntiBytes.Set(p.AntiEntropyBytes)
	c.mStrChunks.Set(int64(p.StreamChunks))
	c.mStrMiss.Set(int64(p.StreamDeadlineMiss))
	c.mStrRebuf.Set(int64(p.StreamRebuffers))
	c.mStrBytes.Set(int64(p.StreamBytes))
	c.tracer.EmitTick(int(time.Since(c.start) / c.cfg.TickEvery))
}

// HostIDs returns the registered host IDs in ascending order (a stable
// order for summaries; hello order is arrival-dependent).
func (c *Collector) HostIDs() []ids.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]ids.ID(nil), c.order...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
