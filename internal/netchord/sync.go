package netchord

import (
	"chordbalance/internal/ids"
	"chordbalance/internal/store"
	"chordbalance/internal/wire"
)

// Anti-entropy tuning. The descent is a Merkle-style binary search over
// ring arcs: equal digests prune a whole subtree in one RPC, so a
// single divergent key costs O(log keys) round trips, and a healthy
// replica costs exactly one.
const (
	// syncLeafKeys is the arc size at or below which the descent stops
	// splitting and reconciles key-by-key. MaxMetas bounds one TSyncKeys
	// reply, so a leaf always fits a frame with room to spare.
	syncLeafKeys = 96
	// maxSyncDepth bounds the descent; with 160-bit arcs halving each
	// level this is never hit before the arc becomes unsplittable.
	maxSyncDepth = 32
	// maxSyncRPCs is the per-replica RPC budget of one anti-entropy
	// pass. A pass that runs out resumes where digests still differ on
	// the next cadence tick; convergence is amortized, not abandoned.
	maxSyncRPCs = 64
	// maxChunkBytes is the value-byte budget of one bulk record frame
	// (TReplicate, TTransfer, TSyncFetchOK, TJoinOK gifts). Frames also
	// carry keys, versions, and headers, so this stays well under
	// wire.MaxPayload even at MaxRecs records.
	maxChunkBytes = 256 << 10
)

// storeRecs converts wire records to store records. Wire records have
// no tombstone bit: a nil value is live data of length zero, and
// deletions travel as higher-version empty writes.
func storeRecs(in []wire.Rec) []store.Rec {
	out := make([]store.Rec, len(in))
	for i, r := range in {
		out[i] = store.Rec{Key: r.Key, Ver: r.Ver, Value: r.Value}
	}
	return out
}

// wireRecs converts store records to wire records, dropping tombstones
// (the wire protocol ships live state; a tombstone's absence at the
// receiver is resolved by version-winning merges, not by shipping it).
func wireRecs(in []store.Rec) []wire.Rec {
	out := make([]wire.Rec, 0, len(in))
	for _, r := range in {
		if r.Tombstone {
			continue
		}
		out = append(out, wire.Rec{Key: r.Key, Ver: r.Ver, Value: r.Value})
	}
	return out
}

// wireMetas converts store metas to wire metas.
func wireMetas(in []store.Meta) []wire.Meta {
	out := make([]wire.Meta, len(in))
	for i, m := range in {
		out[i] = wire.Meta{Key: m.Key, Ver: m.Ver, Sum: m.Sum}
	}
	return out
}

// splitRecChunk cuts one frame-sized prefix off recs: at most
// wire.MaxRecs records and (beyond the first record) at most
// maxChunkBytes of value payload. It returns the chunk and the rest.
func splitRecChunk(recs []wire.Rec) (chunk, rest []wire.Rec) {
	n, bytes := 0, 0
	for n < len(recs) && n < wire.MaxRecs {
		bytes += len(recs[n].Value)
		if n > 0 && bytes > maxChunkBytes {
			break
		}
		n++
	}
	return recs[:n], recs[n:]
}

// recBytes is the value-payload size of a record batch.
func recBytes(recs []wire.Rec) int {
	n := 0
	for _, r := range recs {
		n += len(r.Value)
	}
	return n
}

// antiEntropyOnce runs one Merkle anti-entropy pass: for the primary
// arc (pred, self], compare digests with the first Replicas-1 distinct
// successors and reconcile every difference found within the RPC
// budget. This is the durability repair loop — after a partition heals
// or a replica restarts from its log, these passes converge the
// replica set without full-state transfer.
func (n *Node) antiEntropyOnce() {
	n.mu.Lock()
	if n.leaving || !n.hasPred {
		n.mu.Unlock()
		return
	}
	lo, hi := n.pred.ID, n.ref.ID
	replicas := dedupeRefs(append([]wire.NodeRef(nil), n.succ...), n.ref.ID, n.cfg.Replicas-1)
	n.mu.Unlock()
	if len(replicas) == 0 {
		return
	}
	for _, peer := range replicas {
		n.antiRounds.Add(1)
		if n.host != nil {
			n.host.stAntiRounds.Add(1)
		}
		budget := maxSyncRPCs
		n.syncRange(peer, lo, hi, 0, &budget)
	}
}

// syncRange reconciles the arc (lo, hi] with peer by recursive digest
// descent. Equal digests end the branch; unequal ones split at the arc
// midpoint until the arc is leaf-sized, unsplittable, or the budget is
// spent.
func (n *Node) syncRange(peer wire.NodeRef, lo, hi ids.ID, depth int, budget *int) {
	if *budget <= 0 {
		return
	}
	*budget--
	localSum, localCount := n.st.Digest(lo, hi)
	reply, err := n.pool.call(peer, &wire.Msg{Type: wire.TSyncDigest, Key: lo, Key2: hi})
	if err != nil || reply.Type != wire.TSyncDigestOK || len(reply.Value) != wire.SumLen {
		n.replicaErrs.Add(1)
		return
	}
	var peerSum [wire.SumLen]byte
	copy(peerSum[:], reply.Value)
	if peerSum == localSum {
		return // subtree identical, prune
	}
	peerCount := int(reply.A)
	if localCount+peerCount <= syncLeafKeys || depth >= maxSyncDepth {
		n.reconcileLeaf(peer, lo, hi, budget)
		return
	}
	mid := ids.Midpoint(lo, hi)
	if mid == lo {
		// Midpoint(a, a) is a (zero distance): the full ring splits at
		// the antipode instead.
		mid = lo.Add(ids.PowerOfTwo(ids.Bits - 1))
	}
	if mid == lo || mid == hi {
		// Unsplittable two-point arc: reconcile directly.
		n.reconcileLeaf(peer, lo, hi, budget)
		return
	}
	n.syncRange(peer, lo, mid, depth+1, budget)
	n.syncRange(peer, mid, hi, depth+1, budget)
}

// reconcileLeaf diffs the arc (lo, hi] key-by-key against peer and
// repairs both directions: records the peer is missing (or holds at a
// losing version) are pushed via TReplicate; records the peer wins are
// pulled via TSyncFetch and merged through the version-winning store.
func (n *Node) reconcileLeaf(peer wire.NodeRef, lo, hi ids.ID, budget *int) {
	if *budget <= 0 {
		return
	}
	*budget--
	reply, err := n.pool.call(peer, &wire.Msg{Type: wire.TSyncKeys, Key: lo, Key2: hi})
	if err != nil || reply.Type != wire.TSyncKeysOK {
		n.replicaErrs.Add(1)
		return
	}
	local, _ := n.st.Metas(lo, hi, wire.MaxMetas)
	peerByKey := make(map[ids.ID]wire.Meta, len(reply.Metas))
	for _, m := range reply.Metas {
		peerByKey[m.Key] = m
	}
	localByKey := make(map[ids.ID]store.Meta, len(local))

	// Push: local records the peer lacks or loses on.
	var push []wire.Rec
	for _, m := range local {
		localByKey[m.Key] = m
		pm, ok := peerByKey[m.Key]
		if ok && !m.Wins(store.Meta{Key: pm.Key, Ver: pm.Ver, Sum: pm.Sum}) {
			continue
		}
		v, ver, found, err := n.st.Get(m.Key)
		if err != nil || !found {
			continue // deleted or unreadable since the Metas snapshot
		}
		push = append(push, wire.Rec{Key: m.Key, Ver: ver, Value: v})
	}
	for len(push) > 0 && *budget > 0 {
		var chunk []wire.Rec
		chunk, push = splitRecChunk(push)
		*budget--
		if _, err := n.pool.call(peer, &wire.Msg{Type: wire.TReplicate, Recs: chunk}); err != nil {
			n.replicaErrs.Add(1)
			break
		}
		n.noteRepair(len(chunk), 0, recBytes(chunk))
	}

	// Pull: peer records we lack or lose on.
	var want []wire.Meta
	for _, pm := range reply.Metas {
		lm, ok := localByKey[pm.Key]
		if ok && !(store.Meta{Key: pm.Key, Ver: pm.Ver, Sum: pm.Sum}).Wins(lm) {
			continue
		}
		want = append(want, pm)
	}
	for len(want) > 0 && *budget > 0 {
		batch := want
		if len(batch) > wire.MaxMetas {
			batch = batch[:wire.MaxMetas]
		}
		want = want[len(batch):]
		*budget--
		fetched, err := n.pool.call(peer, &wire.Msg{Type: wire.TSyncFetch, Metas: batch})
		if err != nil || fetched.Type != wire.TSyncFetchOK {
			n.replicaErrs.Add(1)
			break
		}
		if len(fetched.Recs) == 0 {
			break
		}
		if _, err := n.st.ApplyAll(storeRecs(fetched.Recs)); err != nil {
			n.replicaErrs.Add(1)
			break
		}
		n.noteRepair(0, len(fetched.Recs), recBytes(fetched.Recs))
	}
}

// noteRepair records anti-entropy repair traffic on the node and, when
// the node belongs to a host, on the host's churn-surviving cumulative
// counters the collector reads.
func (n *Node) noteRepair(pushed, pulled, bytes int) {
	n.antiPushed.Add(int64(pushed))
	n.antiPulled.Add(int64(pulled))
	n.antiBytes.Add(int64(bytes))
	if n.host != nil {
		n.host.stAntiRepairs.Add(int64(pushed + pulled))
		n.host.stAntiBytes.Add(int64(bytes))
	}
}
