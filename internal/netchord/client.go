package netchord

import (
	"sync/atomic"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/wire"
	"chordbalance/internal/xrand"
)

// Client is a pure wire-protocol client: it performs iterative lookups
// and key/task operations through any ring member without being one.
// cmd/dhtload is its main user — a load generator must not occupy an
// identifier on the ring it is measuring, or it would attract a share
// of the workload it is supposed to impose.
//
// A Client is safe for concurrent use; each peer address gets one
// pooled connection with the same retry/backoff policy as node-to-node
// RPCs.
type Client struct {
	cfg  Config
	pool *peerPool
	seed wire.NodeRef
	salt uint64
	seq  atomic.Uint64
}

// NewClient returns a client that routes through seedAddr. seed feeds
// the client's idempotency-token salt, so two load generators with
// different seeds can never collide in a receiver's dedup window.
func NewClient(cfg Config, tr Transport, seedAddr string, seed uint64) *Client {
	cfg = cfg.WithDefaults()
	return &Client{
		cfg:  cfg,
		pool: newPeerPool(tr, cfg, nil, func() ids.ID { return ids.Zero }),
		seed: wire.NodeRef{Addr: seedAddr},
		salt: xrand.New(seed).Uint64(),
	}
}

// Close tears down the client's pooled connections.
func (c *Client) Close() { c.pool.close() }

// Stats snapshots the client's RPC counters.
func (c *Client) Stats() RPCStats { return c.pool.stats() }

// token returns a fresh nonzero idempotency token.
func (c *Client) token() uint64 {
	tok := c.salt ^ (c.seq.Add(1) << 20)
	if tok == 0 {
		tok = 1
	}
	return tok
}

// Ping round-trips a TPing through the seed node.
func (c *Client) Ping() error {
	_, err := c.pool.call(c.seed, &wire.Msg{Type: wire.TPing})
	return err
}

// Lookup resolves the owner of key by iterating TFindSuccessor from the
// seed node, following the same fallback discipline as Node.lookupFrom:
// each answerer's successor list is kept as alternates in case the
// chosen next hop died since being cached.
func (c *Client) Lookup(key ids.ID) (wire.NodeRef, int, error) {
	cur := c.seed
	var fallbacks []wire.NodeRef
	hops := 0
	for hops <= c.cfg.MaxHops {
		reply, err := c.pool.call(cur, &wire.Msg{Type: wire.TFindSuccessor, Key: key, A: uint64(hops)})
		if err != nil {
			if len(fallbacks) == 0 {
				return wire.NodeRef{}, hops, err
			}
			cur, fallbacks = fallbacks[0], fallbacks[1:]
			hops++
			continue
		}
		if reply.Flag {
			return reply.Node, hops, nil
		}
		fallbacks = fallbacks[:0]
		for _, r := range reply.List {
			if r.ID != reply.Node.ID && r.Addr != "" {
				fallbacks = append(fallbacks, r)
			}
		}
		cur = reply.Node
		hops++
	}
	return wire.NodeRef{}, hops, ErrNoRoute
}

// Put stores value under key at its owner, re-resolving the owner after
// any failure (storing is idempotent, so blind re-sends are safe). A
// nil error means the write is durable: fsynced at the owner and
// acknowledged by its replica quorum.
func (c *Client) Put(key ids.ID, value []byte) error {
	_, err := c.PutVer(key, value)
	return err
}

// PutVer is Put returning the version the write was acknowledged at —
// the handle a verifier needs to later prove the write survived (a read
// at version >= this one with these bytes, or newer).
func (c *Client) PutVer(key ids.ID, value []byte) (uint64, error) {
	var err error
	for attempt := 0; attempt < rerouteAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Ticks(c.cfg.StabilizeEveryTicks))
		}
		var owner wire.NodeRef
		owner, _, err = c.Lookup(key)
		if err != nil {
			continue
		}
		var reply *wire.Msg
		if reply, err = c.pool.call(owner, &wire.Msg{Type: wire.TPut, Key: key, Value: value}); err == nil {
			return reply.A, nil
		}
	}
	return 0, err
}

// Get fetches the value stored under key from its owner.
func (c *Client) Get(key ids.ID) ([]byte, error) {
	v, _, err := c.GetVer(key)
	return v, err
}

// GetVer is Get returning the owner's stored version alongside the
// value.
func (c *Client) GetVer(key ids.ID) ([]byte, uint64, error) {
	owner, _, err := c.Lookup(key)
	if err != nil {
		return nil, 0, err
	}
	reply, err := c.pool.call(owner, &wire.Msg{Type: wire.TGet, Key: key})
	if err != nil {
		return nil, 0, err
	}
	if !reply.Flag {
		return nil, 0, ErrNotFound
	}
	return reply.Value, reply.A, nil
}

// SubmitTask routes units of work under key to its owner, reusing one
// idempotency token across re-routes so the units land exactly once
// even when an owner dies (or refuses, mid-leave) between attempts.
func (c *Client) SubmitTask(key ids.ID, units uint64) error {
	tok := c.token()
	var err error
	for attempt := 0; attempt < rerouteAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Ticks(c.cfg.StabilizeEveryTicks))
		}
		var owner wire.NodeRef
		owner, _, err = c.Lookup(key)
		if err != nil {
			continue
		}
		if _, err = c.pool.call(owner, &wire.Msg{Type: wire.TTask, Key: key, A: units, B: tok}); err == nil {
			return nil
		}
	}
	return err
}
