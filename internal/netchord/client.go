package netchord

import (
	"sync/atomic"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/wire"
	"chordbalance/internal/xrand"
)

// Client is a pure wire-protocol client: it performs iterative lookups
// and key/task operations through any ring member without being one.
// cmd/dhtload is its main user — a load generator must not occupy an
// identifier on the ring it is measuring, or it would attract a share
// of the workload it is supposed to impose.
//
// A Client is safe for concurrent use; each peer address gets one
// pooled connection with the same retry/backoff policy as node-to-node
// RPCs.
type Client struct {
	cfg  Config
	pool *peerPool
	seed wire.NodeRef
	id   ids.ID
	salt uint64
	seq  atomic.Uint64
}

// NewClient returns a client that routes through seedAddr. seed feeds
// the client's idempotency-token salt, so two load generators with
// different seeds can never collide in a receiver's dedup window; it
// also derives the synthetic identity the client reports to collectors
// (the client itself never occupies a ring position).
func NewClient(cfg Config, tr Transport, seedAddr string, seed uint64) *Client {
	cfg = cfg.WithDefaults()
	return &Client{
		cfg:  cfg,
		pool: newPeerPool(tr, cfg, nil, func() ids.ID { return ids.Zero }),
		seed: wire.NodeRef{Addr: seedAddr},
		id:   keys.HashUint64(seed ^ 0xc11e47), // "client" salt: a separate stream from the hosts' ID draws
		salt: xrand.New(seed).Uint64(),
	}
}

// ID returns the client's synthetic identity — the key its collector
// reports are aggregated under.
func (c *Client) ID() ids.ID { return c.id }

// Close tears down the client's pooled connections.
func (c *Client) Close() { c.pool.close() }

// Stats snapshots the client's RPC counters.
func (c *Client) Stats() RPCStats { return c.pool.stats() }

// token returns a fresh nonzero idempotency token.
func (c *Client) token() uint64 {
	tok := c.salt ^ (c.seq.Add(1) << 20)
	if tok == 0 {
		tok = 1
	}
	return tok
}

// Ping round-trips a TPing through the seed node.
func (c *Client) Ping() error {
	_, err := c.pool.call(c.seed, &wire.Msg{Type: wire.TPing})
	return err
}

// Lookup resolves the owner of key by iterating TFindSuccessor from the
// seed node, following the same fallback discipline as Node.lookupFrom:
// each answerer's successor list is kept as alternates in case the
// chosen next hop died since being cached.
func (c *Client) Lookup(key ids.ID) (wire.NodeRef, int, error) {
	cur := c.seed
	var fallbacks []wire.NodeRef
	hops := 0
	for hops <= c.cfg.MaxHops {
		reply, err := c.pool.call(cur, &wire.Msg{Type: wire.TFindSuccessor, Key: key, A: uint64(hops)})
		if err != nil {
			if len(fallbacks) == 0 {
				return wire.NodeRef{}, hops, err
			}
			cur, fallbacks = fallbacks[0], fallbacks[1:]
			hops++
			continue
		}
		if reply.Flag {
			return reply.Node, hops, nil
		}
		fallbacks = fallbacks[:0]
		for _, r := range reply.List {
			if r.ID != reply.Node.ID && r.Addr != "" {
				fallbacks = append(fallbacks, r)
			}
		}
		cur = reply.Node
		hops++
	}
	return wire.NodeRef{}, hops, ErrNoRoute
}

// Put stores value under key at its owner, re-resolving the owner after
// any failure (storing is idempotent, so blind re-sends are safe). A
// nil error means the write is durable: fsynced at the owner and
// acknowledged by its replica quorum.
func (c *Client) Put(key ids.ID, value []byte) error {
	_, err := c.PutVer(key, value)
	return err
}

// PutVer is Put returning the version the write was acknowledged at —
// the handle a verifier needs to later prove the write survived (a read
// at version >= this one with these bytes, or newer).
func (c *Client) PutVer(key ids.ID, value []byte) (uint64, error) {
	var err error
	for attempt := 0; attempt < rerouteAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Ticks(c.cfg.StabilizeEveryTicks))
		}
		var owner wire.NodeRef
		owner, _, err = c.Lookup(key)
		if err != nil {
			continue
		}
		var reply *wire.Msg
		if reply, err = c.pool.call(owner, &wire.Msg{Type: wire.TPut, Key: key, Value: value}); err == nil {
			return reply.A, nil
		}
	}
	return 0, err
}

// Get fetches the value stored under key from its owner.
func (c *Client) Get(key ids.ID) ([]byte, error) {
	v, _, err := c.GetVer(key)
	return v, err
}

// GetVer is Get returning the owner's stored version alongside the
// value.
func (c *Client) GetVer(key ids.ID) ([]byte, uint64, error) {
	owner, _, err := c.Lookup(key)
	if err != nil {
		return nil, 0, err
	}
	return c.GetFrom(owner, key)
}

// GetFrom fetches key directly from a node the caller already believes
// owns it, skipping the lookup — the cached-route read path behind
// streaming fetch pipelines (internal/streamload), where sequential
// chunks of one object resolve to the same owner for long stretches.
// Any error (including a not-found at a node that stopped owning the
// key after churn) tells the caller to drop its cache entry and
// re-resolve with GetVer.
func (c *Client) GetFrom(owner wire.NodeRef, key ids.ID) ([]byte, uint64, error) {
	reply, err := c.pool.call(owner, &wire.Msg{Type: wire.TGet, Key: key})
	if err != nil {
		return nil, 0, err
	}
	if !reply.Flag {
		return nil, 0, ErrNotFound
	}
	return reply.Value, reply.A, nil
}

// Owner resolves key's owner — GetVer's lookup half, exposed so a
// caching fetcher can refresh its route map without refetching bytes.
func (c *Client) Owner(key ids.ID) (wire.NodeRef, error) {
	owner, _, err := c.Lookup(key)
	return owner, err
}

// ReportStream pushes the client's cumulative streaming counters to
// the collector at addr: chunks delivered, chunk deadline misses,
// rebuffer events, and value bytes delivered. Reports are keyed by the
// client's synthetic identity, so repeated pushes overwrite (never
// double count) and several clients aggregate.
func (c *Client) ReportStream(addr string, chunks, misses, rebuffers, bytes uint64) error {
	_, err := c.pool.call(wire.NodeRef{Addr: addr}, &wire.Msg{
		Type: wire.TStreamReport,
		From: wire.NodeRef{ID: c.id},
		A:    chunks,
		B:    misses,
		C:    rebuffers,
		D:    bytes,
	})
	return err
}

// SubmitTask routes units of work under key to its owner, reusing one
// idempotency token across re-routes so the units land exactly once
// even when an owner dies (or refuses, mid-leave) between attempts.
func (c *Client) SubmitTask(key ids.ID, units uint64) error {
	tok := c.token()
	var err error
	for attempt := 0; attempt < rerouteAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Ticks(c.cfg.StabilizeEveryTicks))
		}
		var owner wire.NodeRef
		owner, _, err = c.Lookup(key)
		if err != nil {
			continue
		}
		if _, err = c.pool.call(owner, &wire.Msg{Type: wire.TTask, Key: key, A: units, B: tok}); err == nil {
			return nil
		}
	}
	return err
}
