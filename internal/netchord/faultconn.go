package netchord

import (
	"net"
	"sync"
	"time"

	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
)

// NetFaults maps a deterministic internal/faults plan onto real
// connections. The plan's probabilities and schedules are unchanged —
// drops, duplicates, delays, and partition windows all come from the
// same seeded injector the simulator uses — but here a tick is a slice
// of wall time (Config.TickEvery), so partition windows open and close
// in real time and delays become actual sleeps.
//
// Concurrency note: the underlying injector is single-threaded, so
// NetFaults serializes decisions with a mutex. Decisions are therefore
// still drawn from the plan's seeded streams, but the *assignment* of
// decisions to messages depends on goroutine scheduling. That is the
// honest semantics of a real network: the fault rates and windows are
// reproducible, the per-message outcomes are not.
type NetFaults struct {
	mu        sync.Mutex
	inj       *faults.Injector
	start     time.Time
	tickEvery time.Duration

	// stats are cumulative fault-layer counters.
	stats NetFaultStats
}

// NetFaultStats counts fault-layer activity on real connections.
type NetFaultStats struct {
	// Drops counts frames black-holed in transit.
	Drops int64
	// Duplicates counts frames delivered twice.
	Duplicates int64
	// Delays counts frames delayed before delivery.
	Delays int64
	// PartitionDrops counts frames black-holed by an active partition.
	PartitionDrops int64
	// PartitionRefusals counts sends refused client-side (the caller saw
	// ErrPartitioned instead of a timeout).
	PartitionRefusals int64
}

// NewNetFaults validates plan and returns a fault layer whose tick
// clock starts now. A zero plan is legal and inert.
func NewNetFaults(plan faults.Plan, tickEvery time.Duration) (*NetFaults, error) {
	inj, err := faults.New(plan)
	if err != nil {
		return nil, err
	}
	if tickEvery <= 0 {
		tickEvery = Config{}.WithDefaults().TickEvery
	}
	return &NetFaults{inj: inj, start: time.Now(), tickEvery: tickEvery}, nil
}

// Plan returns the installed plan with defaults applied.
func (f *NetFaults) Plan() faults.Plan {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inj.Plan()
}

// Stats snapshots the cumulative fault counters.
func (f *NetFaults) Stats() NetFaultStats {
	if f == nil {
		return NetFaultStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Tick returns the fault clock's current logical tick (elapsed wall
// time divided by the tick length).
func (f *NetFaults) Tick() int {
	if f == nil {
		return 0
	}
	return int(time.Since(f.start) / f.tickEvery)
}

// advance moves the injector's schedule to the current wall tick;
// callers hold f.mu.
func (f *NetFaults) advance() { f.inj.AdvanceTo(f.Tick()) }

// DropNow decides whether one frame is lost (nil-safe; false when nil).
func (f *NetFaults) DropNow() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advance()
	if f.inj.DropNow() {
		f.stats.Drops++
		return true
	}
	return false
}

// DupNow decides whether one delivered frame is duplicated.
func (f *NetFaults) DupNow() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advance()
	if f.inj.DupNow() {
		f.stats.Duplicates++
		return true
	}
	return false
}

// DelayNow returns the wall-time delay imposed on one delivered frame
// (0 almost always; the plan's tick-denominated delay scaled by the
// tick length when it fires).
func (f *NetFaults) DelayNow() time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advance()
	d := f.inj.DelayNow()
	if d > 0 {
		f.stats.Delays++
	}
	return time.Duration(d) * f.tickEvery
}

// SameSide reports whether a frame between the two IDs can cross the
// network right now (true with no active partition, and nil-safe).
func (f *NetFaults) SameSide(a, b ids.ID) bool {
	if f == nil {
		return true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advance()
	return f.inj.SameSide(a, b)
}

// refused counts one client-side partition refusal.
func (f *NetFaults) refused() {
	f.mu.Lock()
	f.stats.PartitionRefusals++
	f.mu.Unlock()
}

// ForcePartition activates a partition immediately at the given
// identifier-space fraction, overriding the plan until Heal.
func (f *NetFaults) ForcePartition(frac float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inj.ForcePartition(frac)
}

// Heal lifts any active partition — manual or scheduled — from now on.
func (f *NetFaults) Heal() {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inj.Heal()
}

// PartitionActive reports whether a partition is in force right now.
func (f *NetFaults) PartitionActive() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advance()
	return f.inj.PartitionActive()
}

// Wrap returns conn with the fault layer applied to writes between the
// two endpoint IDs. remote may be ids.Zero when the peer's identity is
// unknown (server-side accepts); partition checks then pass and only
// drop/dup/delay apply, which keeps the two directions from
// double-counting the partition. A nil *NetFaults returns conn as is.
func (f *NetFaults) Wrap(conn net.Conn, local, remote ids.ID) net.Conn {
	if f == nil {
		return conn
	}
	return &faultConn{Conn: conn, nf: f, local: local, remote: remote}
}

// faultConn is the fault-injecting conn wrapper. It relies on the wire
// package's invariant that every frame is written with exactly one
// Write call, so per-Write decisions are per-message decisions:
//
//   - partition: frames across the cut are black-holed (the sender sees
//     success and then times out waiting for the reply — the symptom a
//     real partition produces);
//   - drop: the frame is black-holed the same way;
//   - delay: the write is performed after sleeping the plan's
//     tick-denominated delay scaled to wall time;
//   - duplicate: the frame is written twice (receivers discard the
//     duplicate by request id, as deployed RPC layers do).
//
// Reads pass through untouched: each direction of a conversation is
// wrapped by its sender, so applying faults on reads too would
// double-charge every frame.
type faultConn struct {
	net.Conn
	nf            *NetFaults
	local, remote ids.ID
}

// Write implements net.Conn with fault injection per frame.
func (c *faultConn) Write(b []byte) (int, error) {
	if c.remote != ids.Zero && !c.nf.SameSide(c.local, c.remote) {
		c.nf.mu.Lock()
		c.nf.stats.PartitionDrops++
		c.nf.mu.Unlock()
		return len(b), nil // black hole: sender times out, like a real cut
	}
	if c.nf.DropNow() {
		return len(b), nil // black hole
	}
	if d := c.nf.DelayNow(); d > 0 {
		time.Sleep(d)
	}
	n, err := c.Conn.Write(b)
	if err == nil && c.nf.DupNow() {
		_, _ = c.Conn.Write(b) // duplicate delivery; receiver de-dupes by req id
	}
	return n, err
}
