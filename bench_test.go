// Package chordbalance's root benchmarks regenerate every table and
// figure of the paper at reduced trial counts, so `go test -bench=. -benchmem`
// doubles as a smoke reproduction of the whole evaluation. Use
// cmd/dhtsweep and cmd/dhtfig with -trials 100 for publication-strength
// numbers.
//
// Benchmark-to-artifact map:
//
//	BenchmarkTable1            -> Table I   (task distribution medians)
//	BenchmarkTable2            -> Table II  (churn runtime factors)
//	BenchmarkFigure1           -> Figure 1  (workload distribution)
//	BenchmarkFigure2_3         -> Figures 2-3 (unit-circle layouts)
//	BenchmarkFigure<4..14>     -> Figures 4-14 (workload histograms)
//	BenchmarkSectionVIB/C/D    -> §VI-B/C/D text results
//	BenchmarkAblation*         -> §VI-B-1 and DESIGN.md ablations
//	BenchmarkChordLookup       -> the O(log n) lookup cost the simulator
//	                              charges for joins and Sybil placement
//	BenchmarkChordReduceJob    -> the ChordReduce substrate end to end
package chordbalance_test

import (
	"fmt"
	"testing"

	"chordbalance/internal/chord"
	"chordbalance/internal/chordreduce"
	"chordbalance/internal/experiments"
	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/sim"
	"chordbalance/internal/strategy"
	"chordbalance/internal/xrand"
)

// benchOpt keeps benchmark iterations affordable; b.N loops still vary
// the seed so repeated iterations are not trivially cached work.
func benchOpt(i int) experiments.Options {
	return experiments.Options{Trials: 1, Seed: uint64(i) + 1}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Table1(benchOpt(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 9 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.Table2(benchOpt(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != len(experiments.Table2Rates)*len(experiments.Table2Networks) {
			b.Fatal("table 2 incomplete")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, _, err := experiments.Figure1(benchOpt(i))
		if err != nil {
			b.Fatal(err)
		}
		if h.Total() == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure2_3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.RingFigure(false, uint64(i))) != 110 {
			b.Fatal("figure 2 wrong size")
		}
		if len(experiments.RingFigure(true, uint64(i))) != 110 {
			b.Fatal("figure 3 wrong size")
		}
	}
}

// benchmarkWorkloadFigure regenerates one histogram figure per iteration.
func benchmarkWorkloadFigure(b *testing.B, num int) {
	fig := experiments.Figures[num]
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWorkloadFigure(fig, benchOpt(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.HistA.Total() == 0 || res.HistB.Total() == 0 {
			b.Fatal("empty histogram")
		}
	}
}

func BenchmarkFigure4(b *testing.B)  { benchmarkWorkloadFigure(b, 4) }
func BenchmarkFigure5(b *testing.B)  { benchmarkWorkloadFigure(b, 5) }
func BenchmarkFigure6(b *testing.B)  { benchmarkWorkloadFigure(b, 6) }
func BenchmarkFigure7(b *testing.B)  { benchmarkWorkloadFigure(b, 7) }
func BenchmarkFigure8(b *testing.B)  { benchmarkWorkloadFigure(b, 8) }
func BenchmarkFigure9(b *testing.B)  { benchmarkWorkloadFigure(b, 9) }
func BenchmarkFigure10(b *testing.B) { benchmarkWorkloadFigure(b, 10) }
func BenchmarkFigure11(b *testing.B) { benchmarkWorkloadFigure(b, 11) }
func BenchmarkFigure12(b *testing.B) { benchmarkWorkloadFigure(b, 12) }
func BenchmarkFigure13(b *testing.B) { benchmarkWorkloadFigure(b, 13) }
func BenchmarkFigure14(b *testing.B) { benchmarkWorkloadFigure(b, 14) }

func benchSummary(b *testing.B, run func(experiments.Options) ([]experiments.SummaryCell, error)) {
	for i := 0; i < b.N; i++ {
		cells, err := run(benchOpt(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

func BenchmarkSectionVIBaseline(b *testing.B) { benchSummary(b, experiments.BaselineSummary) }
func BenchmarkSectionVIBRandom(b *testing.B)  { benchSummary(b, experiments.RandomSummary) }
func BenchmarkSectionVICNeighbor(b *testing.B) {
	benchSummary(b, experiments.NeighborSummary)
}
func BenchmarkSectionVIDInvitation(b *testing.B) {
	benchSummary(b, experiments.InvitationSummary)
}

func BenchmarkAblationSybilThreshold(b *testing.B) {
	benchSummary(b, experiments.AblationSybilThreshold)
}
func BenchmarkAblationMaxSybils(b *testing.B) { benchSummary(b, experiments.AblationMaxSybils) }
func BenchmarkAblationChurnOnRandom(b *testing.B) {
	benchSummary(b, experiments.AblationChurnOnRandom)
}
func BenchmarkAblationConsumeMode(b *testing.B) {
	benchSummary(b, experiments.AblationConsumeMode)
}
func BenchmarkAblationDecisionCadence(b *testing.B) {
	benchSummary(b, experiments.AblationDecisionCadence)
}
func BenchmarkAblationAvoidRepeats(b *testing.B) {
	benchSummary(b, experiments.AblationAvoidRepeats)
}
func BenchmarkAblationChurnModel(b *testing.B) {
	benchSummary(b, experiments.AblationChurnModel)
}
func BenchmarkExtensionsVII(b *testing.B) { benchSummary(b, experiments.ExtensionsSummary) }
func BenchmarkAblationWorkloadSkew(b *testing.B) {
	benchSummary(b, experiments.AblationWorkloadSkew)
}
func BenchmarkAblationStreaming(b *testing.B) {
	benchSummary(b, experiments.AblationStreaming)
}
func BenchmarkVirtualServers(b *testing.B) { benchSummary(b, experiments.VirtualServers) }

// BenchmarkStrengthShare regenerates the §VII work-share measurement.
func BenchmarkStrengthShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.StrengthShare(benchOpt(i))
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 15 {
			b.Fatal("share table incomplete")
		}
	}
}

// BenchmarkChurnCurve regenerates the footnote-2 churn-rate sweep.
func BenchmarkChurnCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ChurnCurve(benchOpt(i))
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 8 {
			b.Fatal("curve incomplete")
		}
	}
}

// BenchmarkWorkSeries regenerates the §V-C work-per-tick observation.
func BenchmarkWorkSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.WorkSeries(50, benchOpt(i))
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 50 {
			b.Fatal("series incomplete")
		}
	}
}

// BenchmarkChordHopsTable regenerates the O(log n) validation table.
func BenchmarkChordHopsTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ChordHops(experiments.Options{Trials: 50, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 4 {
			b.Fatal("hops table incomplete")
		}
	}
}

// BenchmarkOverlayHops regenerates the Chord-vs-Symphony comparison.
func BenchmarkOverlayHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.OverlayHops(experiments.Options{Trials: 100, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 4 {
			b.Fatal("overlay table incomplete")
		}
	}
}

// BenchmarkTraffic regenerates the §VI message-overhead comparison.
func BenchmarkTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Traffic(benchOpt(i))
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 7 {
			b.Fatal("traffic table incomplete")
		}
	}
}

// BenchmarkResilience regenerates the replication-resilience staircase.
func BenchmarkResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Resilience(experiments.Options{Trials: 1, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 20 {
			b.Fatal("resilience table incomplete")
		}
	}
}

// BenchmarkArcTable regenerates the §III arc-length analysis.
func BenchmarkArcTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ArcTable(benchOpt(i))
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 4 {
			b.Fatal("arc table incomplete")
		}
	}
}

// BenchmarkSybilPlacement measures how quickly a node can synthesize an
// identifier inside a target arc — the operation the paper's reference
// [21] shows to be "extremely quick", and the basis of every Sybil
// strategy.
func BenchmarkSybilPlacement(b *testing.B) {
	rng := xrand.New(7)
	g := keys.NewGenerator(8)
	a, c := g.Next(), g.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ids.UniformInRange(rng, a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationTick measures raw engine throughput: one full
// reference run per iteration, reporting ticks/op via custom metrics.
func BenchmarkSimulationTick(b *testing.B) {
	totalTicks := 0
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Nodes: 1000, Tasks: 100000, Seed: uint64(i),
			Strategy: strategy.NewRandomInjection(),
		})
		if err != nil || !res.Completed {
			b.Fatal("run failed")
		}
		totalTicks += res.Ticks
	}
	b.ReportMetric(float64(totalTicks)/float64(b.N), "ticks/run")
}

// BenchmarkChordLookup validates the O(log n) lookup-cost model the tick
// simulator charges for joins and Sybil placements.
func BenchmarkChordLookup(b *testing.B) {
	nw := chord.NewNetwork(chord.Config{})
	g := keys.NewGenerator(1)
	entry, err := nw.Create(g.Next())
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i < 128; i++ {
		if _, err := nw.Join(g.Next(), entry); err != nil {
			b.Fatal(err)
		}
		nw.StabilizeAll()
	}
	if _, ok := nw.StabilizeUntilConverged(512); !ok {
		b.Fatal("ring did not converge")
	}
	nw.FixAllFingers()
	rng := xrand.New(2)
	totalHops := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, hops, err := entry.Lookup(ids.Random(rng))
		if err != nil {
			b.Fatal(err)
		}
		totalHops += hops
	}
	b.ReportMetric(float64(totalHops)/float64(b.N), "hops/lookup")
}

// BenchmarkChordReduceJob runs the full MapReduce substrate end to end.
func BenchmarkChordReduceJob(b *testing.B) {
	nw := chord.NewNetwork(chord.Config{})
	g := keys.NewGenerator(3)
	entry, err := nw.Create(g.Next())
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i < 16; i++ {
		if _, err := nw.Join(g.Next(), entry); err != nil {
			b.Fatal(err)
		}
		nw.StabilizeAll()
	}
	if _, ok := nw.StabilizeUntilConverged(128); !ok {
		b.Fatal("ring did not converge")
	}
	nw.FixAllFingers()
	inputs := map[string]string{}
	for i := 0; i < 16; i++ {
		inputs[fmt.Sprintf("chunk-%02d", i)] = "alpha beta gamma delta alpha beta alpha"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chordreduce.NewRunner(nw, entry, chordreduce.WordCount(inputs)).Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Output["alpha"] != "48" {
			b.Fatalf("alpha = %q", res.Output["alpha"])
		}
	}
}
