// Loadbalance compares every strategy in the paper on one network,
// reporting runtime factors, balancing quality (Gini coefficient of the
// tick-35 workload), and estimated protocol traffic — the three axes the
// paper trades off in §VI.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"os"

	"chordbalance/internal/report"
	"chordbalance/internal/sim"
	"chordbalance/internal/stats"
	"chordbalance/internal/strategy"
)

func main() {
	type contender struct {
		label string
		strat string
		churn float64
	}
	contenders := []contender{
		{"no strategy", "none", 0},
		{"induced churn 0.01", "none", 0.01},
		{"random injection", "random", 0},
		{"neighbor injection", "neighbor", 0},
		{"smart neighbor", "smart-neighbor", 0},
		{"invitation", "invitation", 0},
	}

	t := report.NewTable(
		"Strategy comparison: 1000 nodes, 100k tasks, seed 7 (ideal: 100 ticks)",
		"strategy", "ticks", "factor", "gini@35", "idle@35", "sybils", "est. messages")
	for _, c := range contenders {
		st, ok := strategy.ByName(c.strat)
		if !ok {
			log.Fatalf("unknown strategy %q", c.strat)
		}
		res, err := sim.Run(sim.Config{
			Nodes: 1000, Tasks: 100000, Seed: 7,
			Strategy: st, ChurnRate: c.churn,
			SnapshotTicks: []int{35},
		})
		if err != nil {
			log.Fatal(err)
		}
		snap := res.Snapshots[0]
		idle := 0
		for _, w := range snap.HostWorkloads {
			if w == 0 {
				idle++
			}
		}
		t.AddRowf(c.label, res.Ticks, res.RuntimeFactor,
			stats.GiniInts(snap.HostWorkloads), idle,
			res.Messages.SybilsCreated, res.Messages.Total())
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLower factor = faster job; lower Gini = better balanced at tick 35.")
}
