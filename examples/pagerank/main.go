// Pagerank runs iterative PageRank as chained MapReduce rounds over a
// Chord DHT — the "unorthodox application" class the paper's introduction
// motivates (distributed computing and machine learning on DHTs). Graph
// structure and evolving ranks both live in the DHT; a node crashes
// between rounds and the computation carries on.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strconv"
	"strings"

	"chordbalance/internal/chord"
	"chordbalance/internal/chordreduce"
	"chordbalance/internal/keys"
)

const damping = 0.85

// graph: a tiny web. Node -> out-links.
var graph = map[string][]string{
	"home":    {"docs", "blog", "about"},
	"docs":    {"home", "api"},
	"api":     {"docs"},
	"blog":    {"home", "docs", "api"},
	"about":   {"home"},
	"orphan":  {"home"}, // linked by nobody
	"sinkish": {"home"}, // everything flows back home
}

func main() {
	// Build the overlay.
	nw := chord.NewNetwork(chord.Config{Replicas: 3})
	gen := keys.NewGenerator(777)
	entry, err := nw.Create(gen.Next())
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i < 16; i++ {
		if _, err := nw.Join(gen.Next(), entry); err != nil {
			log.Fatal(err)
		}
		nw.StabilizeAll()
	}
	if _, ok := nw.StabilizeUntilConverged(128); !ok {
		log.Fatalf("overlay did not converge: %v", nw.VerifyRing())
	}
	nw.FixAllFingers()

	n := float64(len(graph))
	state := map[string]string{}
	for page := range graph {
		state[page] = fmt.Sprintf("%.6f", 1/n)
	}

	// Each round's job: chunk per page carrying "rank|link link ...".
	buildJob := func(state map[string]string) chordreduce.Job {
		inputs := map[string]string{}
		for page, links := range graph {
			inputs[page] = state[page] + "|" + strings.Join(links, " ")
		}
		return chordreduce.Job{
			Inputs: inputs,
			Map: func(page, content string) []chordreduce.KV {
				parts := strings.SplitN(content, "|", 2)
				rank, _ := strconv.ParseFloat(parts[0], 64)
				links := strings.Fields(parts[1])
				out := make([]chordreduce.KV, 0, len(links)+1)
				share := rank / float64(len(links))
				for _, q := range links {
					out = append(out, chordreduce.KV{Key: q,
						Value: fmt.Sprintf("%.9f", share)})
				}
				// Self-entry so pages nobody links to keep a rank row.
				out = append(out, chordreduce.KV{Key: page, Value: "0"})
				return out
			},
			Reduce: func(_ string, values []string) string {
				sum := 0.0
				for _, v := range values {
					f, _ := strconv.ParseFloat(v, 64)
					sum += f
				}
				return fmt.Sprintf("%.6f", (1-damping)/n+damping*sum)
			},
		}
	}

	converged := func(prev, next map[string]string) bool {
		maxDelta := 0.0
		for k, v := range next {
			a, _ := strconv.ParseFloat(prev[k], 64)
			b, _ := strconv.ParseFloat(v, 64)
			if d := math.Abs(a - b); d > maxDelta {
				maxDelta = d
			}
		}
		return maxDelta < 1e-4
	}

	// Crash one node after the first round: the DHT absorbs it.
	round := 0
	final, results, err := chordreduce.Iterate(nw, entry, state, 50,
		func(st map[string]string) chordreduce.Job {
			if round == 1 {
				for _, id := range nw.AliveIDs() {
					if id != entry.ID() {
						nw.Kill(id)
						nw.StabilizeUntilConverged(200)
						fmt.Printf("node %s crashed after round 1; continuing\n", id.Short())
						break
					}
				}
			}
			round++
			return buildJob(st)
		}, converged)
	if err != nil {
		log.Fatal(err)
	}
	rounds := len(results)

	type pr struct {
		page string
		rank float64
	}
	var ranks []pr
	var total float64
	for page, v := range final {
		r, _ := strconv.ParseFloat(v, 64)
		ranks = append(ranks, pr{page, r})
		total += r
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].rank > ranks[j].rank })

	fmt.Printf("PageRank converged after %d rounds on %d live nodes (rank mass %.3f)\n",
		rounds, len(nw.AliveIDs()), total)
	for _, r := range ranks {
		bar := strings.Repeat("#", int(r.rank*120))
		fmt.Printf("%8s  %.4f  %s\n", r.page, r.rank, bar)
	}
	if ranks[0].page != "home" {
		log.Fatalf("expected 'home' to dominate, got %q", ranks[0].page)
	}
}
