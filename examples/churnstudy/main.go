// Churnstudy reproduces the paper's §V-C "detailed observations of how
// the workload is distributed and redistributed throughout the network
// during the first 50 ticks": it tracks tasks completed per tick under
// increasing churn rates and renders the series as terminal sparklines,
// showing how churn keeps more of the network busy for longer.
//
//	go run ./examples/churnstudy
package main

import (
	"fmt"
	"log"
	"strings"

	"chordbalance/internal/sim"
)

const window = 50

var sparks = []rune(" .:-=+*#%@")

func sparkline(series []int, max int) string {
	var b strings.Builder
	for _, v := range series {
		i := v * (len(sparks) - 1) / max
		b.WriteRune(sparks[i])
	}
	return b.String()
}

func main() {
	rates := []float64{0, 0.001, 0.01, 0.05}
	series := make([][]int, len(rates))
	maxWork := 1
	for i, rate := range rates {
		res, err := sim.Run(sim.Config{
			Nodes: 1000, Tasks: 100000, ChurnRate: rate, Seed: 21,
			RecordWorkPerTick: true, MaxTicks: window,
		})
		if err != nil {
			log.Fatal(err)
		}
		series[i] = res.WorkPerTick
		for _, w := range res.WorkPerTick {
			if w > maxWork {
				maxWork = w
			}
		}
	}

	fmt.Printf("Tasks completed per tick, first %d ticks (1000 nodes, 100k tasks)\n", window)
	fmt.Printf("scale: ' '=0 .. '@'=%d tasks/tick; ideal is 1000/tick for 100 ticks\n\n", maxWork)
	for i, rate := range rates {
		total := 0
		for _, w := range series[i] {
			total += w
		}
		fmt.Printf("churn %-6g |%s| %5d tasks done\n", rate, sparkline(series[i], maxWork), total)
	}

	fmt.Println("\nPer-tick detail (every 5th tick):")
	fmt.Printf("%6s", "tick")
	for _, rate := range rates {
		fmt.Printf("  churn=%-6g", rate)
	}
	fmt.Println()
	for t := 4; t < window; t += 5 {
		fmt.Printf("%6d", t+1)
		for i := range rates {
			fmt.Printf("  %12d", series[i][t])
		}
		fmt.Println()
	}
	fmt.Println(`
With no churn the throughput decays steadily: nodes run dry and idle
while a few overloaded nodes grind on, and the tail (ticks 100+) crawls.
Churn keeps re-injecting nodes into loaded arcs, so the work rate decays
more slowly and the job finishes in far fewer ticks — the §VI-A
mechanism behind Table II.`)
}
