// Quickstart: simulate a Chord DHT computation with and without the
// paper's best strategy (random Sybil injection) and compare runtimes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chordbalance/internal/sim"
	"chordbalance/internal/strategy"
)

func main() {
	// A 500-node network working through 50,000 tasks: with perfect
	// balance it would finish in 100 ticks.
	base := sim.Config{Nodes: 500, Tasks: 50000, Seed: 42}

	baseline, err := sim.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	balanced := base
	balanced.Strategy = strategy.NewRandomInjection()
	withSybils, err := sim.Run(balanced)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ideal runtime:      %d ticks\n", baseline.IdealTicks)
	fmt.Printf("no strategy:        %d ticks (factor %.2f)\n",
		baseline.Ticks, baseline.RuntimeFactor)
	fmt.Printf("random injection:   %d ticks (factor %.2f, %d Sybils created)\n",
		withSybils.Ticks, withSybils.RuntimeFactor,
		withSybils.Messages.SybilsCreated)
	fmt.Printf("speedup:            %.1fx\n",
		float64(baseline.Ticks)/float64(withSybils.Ticks))
}
