// Heterogeneous reproduces the paper's most interesting negative result
// (§VII): in a heterogeneous network the Sybil strategies still balance
// the *workload* well, but the *runtime* improves much less — weak nodes
// pull work away from strong ones. The example measures both axes so the
// divergence is visible, and shows the maxSybils disparity effect.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"os"

	"chordbalance/internal/report"
	"chordbalance/internal/sim"
	"chordbalance/internal/stats"
	"chordbalance/internal/strategy"
)

func run(label string, hetero bool, maxSybils int, stratName string) []any {
	st, ok := strategy.ByName(stratName)
	if !ok {
		log.Fatalf("unknown strategy %q", stratName)
	}
	res, err := sim.Run(sim.Config{
		Nodes: 500, Tasks: 100000, Seed: 11,
		Strategy:       st,
		Heterogeneous:  hetero,
		WorkByStrength: hetero, // strength matters only when consumed
		MaxSybils:      maxSybils,
		SnapshotTicks:  []int{35},
	})
	if err != nil {
		log.Fatal(err)
	}
	snap := res.Snapshots[0]
	idle := 0
	for _, w := range snap.HostWorkloads {
		if w == 0 {
			idle++
		}
	}
	return []any{label, res.IdealTicks, res.Ticks, res.RuntimeFactor,
		stats.GiniInts(snap.HostWorkloads), idle}
}

func main() {
	t := report.NewTable(
		"Heterogeneity study: 500 nodes, 100k tasks (strengths U{1..maxSybils})",
		"network", "ideal", "ticks", "factor", "gini@35", "idle@35")
	t.AddRowf(run("homogeneous, none", false, 5, "none")...)
	t.AddRowf(run("homogeneous, random", false, 5, "random")...)
	t.AddRowf(run("hetero 1..5, none", true, 5, "none")...)
	t.AddRowf(run("hetero 1..5, random", true, 5, "random")...)
	t.AddRowf(run("hetero 1..10, random", true, 10, "random")...)
	t.AddRowf(run("hetero 1..5, invitation", true, 5, "invitation")...)
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println(`
Reading the table: random injection drives the Gini coefficient (im-
balance) down in both homogeneous and heterogeneous networks, but the
heterogeneous runtime factor stays further from 1 — the workload is
balanced, the efficiency is not (§VII). Widening the strength range
(maxSybils 10) makes the disparity, and the factor, worse.`)
}
