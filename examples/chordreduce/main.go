// Chordreduce runs a MapReduce word count on a real Chord overlay — the
// ChordReduce substrate the paper builds on — and crashes nodes mid-job
// to show the computation surviving churn: data lives in the DHT with
// active replication, and map tasks are re-executed by whichever node
// inherits a crashed mapper's key range.
//
//	go run ./examples/chordreduce
package main

import (
	"fmt"
	"log"
	"strings"

	"chordbalance/internal/chord"
	"chordbalance/internal/chordreduce"
	"chordbalance/internal/keys"
)

func main() {
	// Build a 24-node overlay.
	nw := chord.NewNetwork(chord.Config{Replicas: 3})
	gen := keys.NewGenerator(2024)
	entry, err := nw.Create(gen.Next())
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i < 24; i++ {
		if _, err := nw.Join(gen.Next(), entry); err != nil {
			log.Fatal(err)
		}
		nw.StabilizeAll()
	}
	if _, ok := nw.StabilizeUntilConverged(200); !ok {
		log.Fatalf("ring did not converge: %v", nw.VerifyRing())
	}
	nw.FixAllFingers()
	fmt.Printf("overlay up: %d nodes, %d protocol messages so far\n",
		len(nw.AliveIDs()), nw.TotalMessages())

	// A small corpus split into chunks, as ChordReduce would shard a file.
	corpus := strings.Fields(`the tao of programming states that a well
	written program is its own heaven and a poorly written program is its
	own hell the wise programmer brings balance to the network and the
	network brings work to the idle node`)
	inputs := map[string]string{}
	const chunkWords = 12
	for i := 0; i*chunkWords < len(corpus); i++ {
		end := (i + 1) * chunkWords
		if end > len(corpus) {
			end = len(corpus)
		}
		inputs[fmt.Sprintf("chunk-%02d", i)] = strings.Join(corpus[i*chunkWords:end], " ")
	}
	fmt.Printf("job: word count over %d chunks\n", len(inputs))

	job := chordreduce.WordCount(inputs)
	runner := chordreduce.NewRunner(nw, entry, job)

	// Crash two nodes while the map phase runs, plus two simulated
	// mid-task mapper deaths that force re-execution.
	runner.FailNextMaps = 2
	crashed := 0
	runner.Hook = func(phase string, step int) {
		if phase == "map" && (step == 1 || step == 3) && crashed < 2 {
			for _, id := range nw.AliveIDs() {
				if id != entry.ID() {
					nw.Kill(id)
					crashed++
					fmt.Printf("  !! node %s crashed during the map phase\n", id.Short())
					break
				}
			}
		}
	}

	res, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("map tasks executed: %d (%d chunks + %d re-executions)\n",
		res.MapExecutions, len(inputs), res.MapExecutions-len(inputs))
	fmt.Printf("job consumed ~%d DHT messages; %d nodes still alive\n",
		res.Messages, len(nw.AliveIDs()))

	// Validate against a sequential run.
	want := chordreduce.Sequential(job)
	for k, v := range want {
		if res.Output[k] != v {
			log.Fatalf("MISMATCH: %q = %q, want %q", k, res.Output[k], v)
		}
	}
	fmt.Printf("distributed result matches sequential execution (%d distinct words)\n",
		len(res.Output))
	for _, w := range []string{"the", "program", "network"} {
		fmt.Printf("  count[%q] = %s\n", w, res.Output[w])
	}
}
