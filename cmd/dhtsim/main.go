// Command dhtsim runs a single load-balancing simulation and prints its
// outcome: runtime, runtime factor, message estimates, and (optionally)
// workload histograms at chosen ticks.
//
// Example — the paper's headline configuration:
//
//	dhtsim -nodes 1000 -tasks 100000 -strategy random -snapshots 0,5,35
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"chordbalance/internal/faults"
	"chordbalance/internal/obs"
	"chordbalance/internal/prof"
	"chordbalance/internal/ring"
	"chordbalance/internal/sim"
	"chordbalance/internal/stats"
	"chordbalance/internal/strategy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dhtsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhtsim", flag.ContinueOnError)
	var (
		nodes     = fs.Int("nodes", 1000, "initial network size")
		tasks     = fs.Int("tasks", 100000, "job size in tasks")
		strat     = fs.String("strategy", "none", "none|churn|random|neighbor|smart-neighbor|invitation|strength-invitation|strength-random|targeted")
		churn     = fs.Float64("churn", 0, "per-tick leave/join probability")
		hetero    = fs.Bool("hetero", false, "heterogeneous strengths U{1..maxsybils}")
		byStr     = fs.Bool("work-by-strength", false, "consume strength tasks per tick")
		maxSybils = fs.Int("maxsybils", 5, "Sybil cap per host")
		threshold = fs.Int("threshold", 0, "sybilThreshold")
		succs     = fs.Int("successors", 5, "successor/predecessor list length")
		every     = fs.Int("decide-every", 5, "decision pass cadence in ticks")
		avoid     = fs.Bool("avoid-repeats", false, "neighbor strategy skips failed arcs")
		consume   = fs.String("consume", "front", "consumption order: front|back|alternate")
		seed      = fs.Uint64("seed", 1, "deterministic seed")
		snaps     = fs.String("snapshots", "", "comma-separated ticks to histogram (e.g. 0,5,35)")
		verbose   = fs.Bool("v", false, "print message accounting detail")
		jsonOut   = fs.Bool("json", false, "emit the full result as JSON (for scripting)")
		zipfObj   = fs.Int("zipf-objects", 0, "task keys reference this many Zipf-popular objects (0 = uniform)")
		zipfS     = fs.Float64("zipf-s", 1.0, "Zipf exponent when -zipf-objects > 0")
		streamT   = fs.Int("stream-tasks", 0, "extra tasks arriving during the run")
		streamR   = fs.Int("stream-rate", 0, "arrival rate in tasks/tick")
		events    = fs.String("events", "", "write the topology event log (joins/leaves/Sybils) to this CSV file")
		bursty    = fs.Bool("bursty-churn", false, "concentrate churn into periodic bursts")
		burstP    = fs.Int("burst-period", 50, "burst cycle length in ticks")
		burstD    = fs.Float64("burst-duty", 0.2, "fraction of each cycle with churn on")

		// Deterministic fault plan (docs/FAULTS.md).
		crashRate  = fs.Float64("crash-rate", 0, "per-host per-tick crash-stop probability")
		crashEvery = fs.Int("crash-burst-every", 0, "correlated crash burst cadence in ticks")
		crashSize  = fs.Int("crash-burst-size", 0, "hosts per correlated crash burst")
		partFrac   = fs.Float64("partition", 0, "partition fraction of the ID space (0 = none)")
		partStart  = fs.Int("partition-start", 0, "tick the partition forms")
		partHeal   = fs.Int("partition-heal", 0, "tick the partition heals (0 = never)")
		faultSeed  = fs.Uint64("fault-seed", 0, "fault plan seed (0 = derive from -seed)")
		replicas   = fs.Int("replicas", 0, "replication degree for crashes: 0 = default min(3, successors), -1 = off")

		// Perf-evidence profiles (docs/PERFORMANCE.md, EXPERIMENTS.md).
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")

		// Per-tick JSONL trace (docs/OBSERVABILITY.md; analyze with dhttrace).
		tracePath = fs.String("trace", "", "write a per-tick JSONL trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	st, ok := strategy.ByName(*strat)
	if !ok {
		return fmt.Errorf("unknown strategy %q", *strat)
	}
	if *strat == "churn" && *churn == 0 {
		*churn = 0.01 // the churn strategy is the baseline plus turnover
	}
	mode, err := parseConsume(*consume)
	if err != nil {
		return err
	}
	snapTicks, err := parseTicks(*snaps)
	if err != nil {
		return err
	}

	cfg := sim.Config{
		Nodes:          *nodes,
		Tasks:          *tasks,
		Strategy:       st,
		ChurnRate:      *churn,
		Heterogeneous:  *hetero,
		WorkByStrength: *byStr,
		MaxSybils:      *maxSybils,
		SybilThreshold: *threshold,
		NumSuccessors:  *succs,
		DecisionEvery:  *every,
		AvoidRepeats:   *avoid,
		ConsumeMode:    mode,
		Seed:           *seed,
		SnapshotTicks:  snapTicks,
		ZipfObjects:    *zipfObj,
		ZipfExponent:   *zipfS,
		StreamTasks:    *streamT,
		StreamRate:     *streamR,
		BurstPeriod:    *burstP,
		BurstDuty:      *burstD,
	}
	if *bursty {
		cfg.ChurnModel = sim.ChurnBursty
	}
	cfg.Replicas = *replicas
	cfg.Faults = faults.Plan{
		Seed:           *faultSeed,
		CrashRate:      *crashRate,
		BurstEvery:     *crashEvery,
		BurstSize:      *crashSize,
		PartitionFrac:  *partFrac,
		PartitionStart: *partStart,
		PartitionHeal:  *partHeal,
	}
	if cfg.Faults.Seed == 0 {
		cfg.Faults.Seed = *seed
	}
	cfg.RecordEvents = *events != ""
	if *tracePath != "" {
		sink, err := obs.NewFileSink(*tracePath)
		if err != nil {
			return err
		}
		cfg.Trace = obs.New(sink)
	}
	res, err := sim.Run(cfg)
	if cerr := cfg.Trace.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("closing trace %s: %w", *tracePath, cerr)
	}
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		if err := sim.WriteEventsCSV(f, res.Events); err != nil {
			_ = f.Close() // best-effort cleanup; the write error wins
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d events to %s\n", len(res.Events), *events)
	}

	fmt.Fprintf(out, "strategy=%s nodes=%d tasks=%d churn=%g hetero=%v\n",
		st.Name(), *nodes, *tasks, *churn, *hetero)
	fmt.Fprintf(out, "ticks=%d ideal=%d runtime-factor=%.3f completed=%v\n",
		res.Ticks, res.IdealTicks, res.RuntimeFactor, res.Completed)
	fmt.Fprintf(out, "joins=%d leaves=%d sybils-created=%d sybils-dropped=%d final-vnodes=%d\n",
		res.Messages.Joins, res.Messages.Leaves, res.Messages.SybilsCreated,
		res.Messages.SybilsDropped, res.FinalVNodes)
	if !cfg.Faults.Zero() {
		f := res.Faults
		fmt.Fprintf(out, "crashes=%d keys-lost=%d keys-recovered=%d resubmitted=%d mttr=%.2f repair-msgs=%d\n",
			f.Crashes, f.KeysLost, f.KeysRecovered, f.Resubmitted,
			f.MeanTimeToRepair(), f.RepairMessages)
		if f.PartitionTicks > 0 || f.BlockedJoins > 0 || f.BlockedSybils > 0 {
			fmt.Fprintf(out, "partition-ticks=%d blocked-joins=%d blocked-sybils=%d\n",
				f.PartitionTicks, f.BlockedJoins, f.BlockedSybils)
		}
	}
	if *verbose {
		fmt.Fprintf(out, "lookup-msgs=%d maintenance-msgs=%d\n",
			res.Messages.LookupMessages, res.Messages.Maintenance)
		// Print strategy counters in sorted order so dhtsim output is
		// byte-identical run to run (map iteration order is not).
		kinds := make([]string, 0, len(res.Messages.Strategy))
		for kind := range res.Messages.Strategy {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			fmt.Fprintf(out, "strategy-msgs[%s]=%d\n", kind, res.Messages.Strategy[kind])
		}
	}
	for _, snap := range res.Snapshots {
		h := stats.NewLogHistogram(100000, 3)
		idle := 0
		for _, w := range snap.HostWorkloads {
			h.AddInt(w)
			if w == 0 {
				idle++
			}
		}
		fmt.Fprintf(out, "\n-- tick %d: %d hosts (%d idle), %d vnodes --\n",
			snap.Tick, snap.AliveHosts, idle, snap.VNodes)
		fmt.Fprint(out, h.ASCII(40))
	}
	return nil
}

func parseConsume(s string) (ring.ConsumeMode, error) {
	switch s {
	case "front":
		return ring.ConsumeFront, nil
	case "back":
		return ring.ConsumeBack, nil
	case "alternate":
		return ring.ConsumeAlternate, nil
	}
	return 0, fmt.Errorf("unknown consume mode %q", s)
}

func parseTicks(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad snapshot tick %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
