package main

import (
	"encoding/json"
	"strings"
	"testing"

	"chordbalance/internal/ring"
)

func TestRunBasic(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-nodes", "50", "-tasks", "2500", "-strategy", "random",
		"-seed", "3", "-snapshots", "0,5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"strategy=random", "ticks=", "runtime-factor=",
		"completed=true", "-- tick 0:", "-- tick 5:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunVerbose(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-nodes", "20", "-tasks", "400", "-strategy", "smart-neighbor",
		"-v"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "maintenance-msgs=") {
		t.Errorf("verbose output missing message detail:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "strategy-msgs[workload-query]") {
		t.Errorf("verbose output missing strategy messages:\n%s", out.String())
	}
}

func TestRunChurnAlias(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nodes", "30", "-tasks", "600", "-strategy", "churn"}, &out); err != nil {
		t.Fatal(err)
	}
	// The churn alias defaults the rate to 0.01.
	if !strings.Contains(out.String(), "churn=0.01") {
		t.Errorf("churn alias did not set a rate:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-strategy", "bogus"},
		{"-consume", "sideways"},
		{"-snapshots", "1,x"},
		{"-nodes", "0"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v must fail", args)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nodes", "20", "-tasks", "200", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Ticks     int
		Completed bool
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if !res.Completed || res.Ticks < 10 {
		t.Errorf("decoded result implausible: %+v", res)
	}
}

func TestRunZipfAndStreaming(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-nodes", "30", "-tasks", "300",
		"-zipf-objects", "50", "-zipf-s", "0.8",
		"-stream-tasks", "300", "-stream-rate", "30",
		"-strategy", "random"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "completed=true") {
		t.Errorf("zipf+streaming run did not complete:\n%s", out.String())
	}
}

func TestRunBurstyChurn(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-nodes", "30", "-tasks", "600", "-churn", "0.02",
		"-bursty-churn", "-burst-period", "10", "-burst-duty", "0.3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "completed=true") {
		t.Errorf("bursty run failed:\n%s", out.String())
	}
}

func TestRunExtensionStrategy(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-nodes", "30", "-tasks", "600",
		"-strategy", "targeted"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "strategy=targeted") {
		t.Errorf("targeted run failed:\n%s", out.String())
	}
}

func TestParseConsume(t *testing.T) {
	for s, want := range map[string]ring.ConsumeMode{
		"front": ring.ConsumeFront, "back": ring.ConsumeBack, "alternate": ring.ConsumeAlternate,
	} {
		got, err := parseConsume(s)
		if err != nil || got != want {
			t.Errorf("parseConsume(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseConsume("x"); err == nil {
		t.Error("bad mode must fail")
	}
}

func TestParseTicks(t *testing.T) {
	got, err := parseTicks(" 0, 5 ,35")
	if err != nil || len(got) != 3 || got[2] != 35 {
		t.Errorf("parseTicks = %v, %v", got, err)
	}
	if got, err := parseTicks(""); err != nil || got != nil {
		t.Errorf("empty = %v, %v", got, err)
	}
}
