package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListsFigures(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fig  1:", "fig  4:", "fig 14:", "ringviz"} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q:\n%s", want, s)
		}
	}
}

func TestRunFigure5Ascii(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "5", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 5") || !strings.Contains(s, "no strategy") ||
		!strings.Contains(s, "churn 0.01") {
		t.Errorf("figure output wrong:\n%s", s)
	}
}

func TestRunFigure5CSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "5", "-trials", "1", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, "bin,count:") {
		t.Errorf("CSV header = %q", first)
	}
}

func TestRunAllWritesSVGs(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure")
	}
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-all", dir, "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 14 {
		t.Fatalf("wrote %d files, want 14", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure08.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg ") {
		t.Error("figure08.svg is not an SVG")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "99"}, &out); err == nil {
		t.Error("unknown figure must fail")
	}
}
