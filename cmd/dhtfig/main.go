// Command dhtfig regenerates the paper's figures.
//
//	dhtfig -fig 1            # workload probability distribution (Fig. 1)
//	dhtfig -fig 8            # tick-35 histograms, random vs none (Fig. 8)
//	dhtfig -fig 8 -csv       # the same as CSV series for plotting
//
// Figures 2-3 (the unit-circle diagrams) live in cmd/ringviz.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"chordbalance/internal/experiments"
	"chordbalance/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dhtfig:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhtfig", flag.ContinueOnError)
	var (
		all     = fs.String("all", "", "write every figure as SVG into this directory and exit")
		fig     = fs.Int("fig", 0, "figure number (1, 4-14); 0 lists figures")
		trials  = fs.Int("trials", 0, "trials aggregated per side (0 = default)")
		seed    = fs.Uint64("seed", 1, "base seed")
		workers = fs.Int("workers", 0, "parallel workers")
		csv     = fs.Bool("csv", false, "emit CSV series instead of ASCII bars")
		svgPath = fs.String("svg", "", "also write the figure as an SVG file")
		width   = fs.Int("width", 30, "ASCII bar width")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := experiments.Options{Trials: *trials, Seed: *seed, Workers: *workers}

	if *all != "" {
		return writeAllFigures(*all, opt, out)
	}

	if *fig == 0 {
		fmt.Fprintln(out, "fig  1: workload probability distribution, 1000 nodes / 1M tasks")
		nums := make([]int, 0, len(experiments.Figures))
		for n := range experiments.Figures {
			nums = append(nums, n)
		}
		sort.Ints(nums)
		for _, n := range nums {
			f := experiments.Figures[n]
			fmt.Fprintf(out, "fig %2d: tick %2d, %s vs %s\n", n, f.Tick, f.LabelA, f.LabelB)
		}
		fmt.Fprintln(out, "figs 2-3: see cmd/ringviz")
		return nil
	}

	if *fig == 1 {
		h, median, err := experiments.Figure1(opt)
		if err != nil {
			return err
		}
		if *csv {
			t := report.NewTable("", "bin", "count", "fraction")
			fr := h.Fractions()
			t.AddRowf(h.BinLabel(-1), h.ZeroCount, fr[0])
			for i, c := range h.Counts {
				t.AddRowf(h.BinLabel(i), c, fr[i+1])
			}
			t.AddRowf(h.BinLabel(len(h.Counts)), h.OverCount, fr[len(fr)-1])
			return t.WriteCSV(out)
		}
		if *svgPath != "" {
			if err := writeSVG(*svgPath, func(w io.Writer) error {
				return report.SVGHistogramPair(w,
					"Figure 1: workload distribution, 1000 nodes / 1M tasks",
					"nodes per workload bin", h, "", nil)
			}); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *svgPath)
		}
		fmt.Fprintf(out, "Figure 1: workload distribution, 1000 nodes / 1,000,000 tasks\n")
		fmt.Fprintf(out, "median workload = %.1f (paper: 692.3; mean is 1000)\n\n", median)
		fmt.Fprint(out, h.ASCII(*width*2))
		return nil
	}

	spec, ok := experiments.Figures[*fig]
	if !ok {
		return fmt.Errorf("no figure %d (use -fig 0 to list)", *fig)
	}
	res, err := experiments.RunWorkloadFigure(spec, opt)
	if err != nil {
		return err
	}
	if *csv {
		t := report.NewTable("", "bin",
			"count:"+spec.LabelA, "count:"+spec.LabelB)
		t.AddRowf(res.HistA.BinLabel(-1), res.HistA.ZeroCount, res.HistB.ZeroCount)
		for i := range res.HistA.Counts {
			t.AddRowf(res.HistA.BinLabel(i), res.HistA.Counts[i], res.HistB.Counts[i])
		}
		t.AddRowf(res.HistA.BinLabel(len(res.HistA.Counts)),
			res.HistA.OverCount, res.HistB.OverCount)
		return t.WriteCSV(out)
	}
	if *svgPath != "" {
		title := fmt.Sprintf("Figure %d (tick %d)", spec.Number, spec.Tick)
		if err := writeSVG(*svgPath, func(w io.Writer) error {
			return report.SVGHistogramPair(w, title,
				spec.LabelA, res.HistA, spec.LabelB, res.HistB)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *svgPath)
	}
	fmt.Fprintln(out, res.Summary())
	fmt.Fprintln(out)
	return report.HistogramPair(out, spec.LabelA, res.HistA,
		spec.LabelB, res.HistB, *width)
}

// writeAllFigures regenerates figures 1-14 as SVG files in dir.
func writeAllFigures(dir string, opt experiments.Options, out io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, render func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		if err := writeSVG(path, render); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(out, "wrote %s\n", path)
		return nil
	}
	h, _, err := experiments.Figure1(opt)
	if err != nil {
		return err
	}
	if err := write("figure01.svg", func(w io.Writer) error {
		return report.SVGHistogramPair(w,
			"Figure 1: workload distribution, 1000 nodes / 1M tasks",
			"nodes per workload bin", h, "", nil)
	}); err != nil {
		return err
	}
	for i, even := range []bool{false, true} {
		pts := experiments.RingFigure(even, opt.Seed)
		mode := "sha1"
		if even {
			mode = "even"
		}
		name := fmt.Sprintf("figure%02d.svg", i+2)
		title := fmt.Sprintf("Figure %d: 10 nodes, 100 tasks (%s placement)", i+2, mode)
		if err := write(name, func(w io.Writer) error {
			return report.SVGRing(w, title, pts)
		}); err != nil {
			return err
		}
	}
	nums := make([]int, 0, len(experiments.Figures))
	for n := range experiments.Figures {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	for _, n := range nums {
		spec := experiments.Figures[n]
		res, err := experiments.RunWorkloadFigure(spec, opt)
		if err != nil {
			return fmt.Errorf("figure %d: %w", n, err)
		}
		title := fmt.Sprintf("Figure %d (tick %d)", spec.Number, spec.Tick)
		if err := write(fmt.Sprintf("figure%02d.svg", n), func(w io.Writer) error {
			return report.SVGHistogramPair(w, title,
				spec.LabelA, res.HistA, spec.LabelB, res.HistB)
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeSVG writes one SVG document to path.
func writeSVG(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		_ = f.Close() // best-effort cleanup; the render error wins
		return err
	}
	return f.Close()
}
