package main

import (
	"strings"
	"testing"
)

func TestRunSHA1Ascii(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "sha1", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 2") || !strings.Contains(s, "O") || !strings.Contains(s, "+") {
		t.Errorf("ascii output wrong:\n%s", s)
	}
}

func TestRunEvenCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "even", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "x,y,kind" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 111 { // header + 10 nodes + 100 tasks
		t.Errorf("lines = %d, want 111", len(lines))
	}
}

func TestRunBadMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "spiral"}, &out); err == nil {
		t.Error("bad mode must fail")
	}
}
