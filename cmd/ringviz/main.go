// Command ringviz regenerates the paper's Figures 2 and 3: ten nodes and
// one hundred tasks placed on the unit circle, with node IDs drawn from
// SHA-1 (-mode sha1, Figure 2) or spaced evenly (-mode even, Figure 3).
//
//	ringviz -mode sha1            # ASCII rendering
//	ringviz -mode even -csv       # x,y,kind coordinates for plotting
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chordbalance/internal/experiments"
	"chordbalance/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ringviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ringviz", flag.ContinueOnError)
	var (
		mode    = fs.String("mode", "sha1", "node placement: sha1 (Fig. 2) or even (Fig. 3)")
		seed    = fs.Uint64("seed", 1, "seed for the SHA-1 draws")
		csv     = fs.Bool("csv", false, "emit x,y,kind CSV instead of ASCII")
		svgPath = fs.String("svg", "", "also write the figure as an SVG file")
		size    = fs.Int("size", 41, "ASCII grid size (odd)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var even bool
	switch *mode {
	case "sha1":
	case "even":
		even = true
	default:
		return fmt.Errorf("unknown mode %q (want sha1 or even)", *mode)
	}
	pts := experiments.RingFigure(even, *seed)
	fig := 2
	if even {
		fig = 3
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Figure %d: 10 nodes, 100 tasks (%s placement)", fig, *mode)
		if err := report.SVGRing(f, title, pts); err != nil {
			_ = f.Close() // best-effort cleanup; the render error wins
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *svgPath)
	}
	if *csv {
		return report.WritePointsCSV(out, pts)
	}
	fmt.Fprintf(out, "Figure %d: 10 nodes (O) and 100 tasks (+), %s placement\n\n", fig, *mode)
	fmt.Fprint(out, report.AsciiRing(pts, *size))
	return nil
}
