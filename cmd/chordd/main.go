// Command chordd runs networked Chord nodes: one or many hosts in one
// process, speaking the internal/wire protocol over loopback TCP. With
// -join empty it creates a ring (and a collector for progress metrics);
// with -join set it brings additional hosts onto an existing ring, so a
// multi-process cluster is assembled by running chordd once per machine
// with the same seed address.
//
// Example — a 16-host ring running the invitation strategy, then a
// second process adding 4 more hosts:
//
//	chordd -nodes 16 -strategy invitation -seed 77 -duration 30s
//	chordd -join 127.0.0.1:9000 -collector 127.0.0.1:9001 -nodes 4 -index-base 16
//
// Flags mirror cmd/dhtsim where the concepts coincide (strategy names,
// seeds, decision cadence, Sybil caps, fault plan); the differences are
// the networked runtime's own knobs: tick length, RPC timeouts, and
// listen/join addresses. Drive a running cluster with cmd/dhtload; see
// docs/NETWORK.md for the protocol and lifecycle.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chordbalance/internal/faults"
	"chordbalance/internal/netchord"
	"chordbalance/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chordd:", err)
		os.Exit(1)
	}
}

// summary is chordd's end-of-run report.
type summary struct {
	Hosts      int               `json:"hosts"`
	Strategy   string            `json:"strategy"`
	Progress   netchord.Progress `json:"progress"`
	Injections int               `json:"injections"`
	Churns     int               `json:"churns"`
	Sybils     int               `json:"sybils"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chordd", flag.ContinueOnError)
	var (
		nodes     = fs.Int("nodes", 1, "hosts to run in this process")
		strat     = fs.String("strategy", "none", "none|churn|random|neighbor|invitation")
		seed      = fs.Uint64("seed", 1, "deterministic seed for the hosts' RNG streams")
		join      = fs.String("join", "", "seed address of an existing ring (empty = create a new ring)")
		collector = fs.String("collector", "", "collector address to report to (with -join; ring creators start their own)")
		indexBase = fs.Int("index-base", 0, "host index offset (keep distinct per process so RNG streams differ)")
		duration  = fs.Duration("duration", 0, "run length (0 = until SIGINT/SIGTERM)")
		jsonOut   = fs.Bool("json", false, "emit the summary as JSON (for scripting)")

		tick      = fs.Duration("tick", 5*time.Millisecond, "logical tick length (scales timeouts, backoff, cadences)")
		succs     = fs.Int("successors", 8, "successor list length")
		replicas  = fs.Int("replicas", 2, "replication degree")
		consume   = fs.Int("consume", 1, "task units a host consumes per tick")
		every     = fs.Int("decide-every", 5, "strategy decision cadence in ticks")
		maxSybils = fs.Int("maxsybils", 8, "Sybil cap per host")
		threshold = fs.Uint64("threshold", 0, "sybilThreshold: residual at or below which a host seeks work")
		invite    = fs.Uint64("invite-threshold", 8, "workload above which an invitation-strategy node calls for help")
		churnProb = fs.Float64("churn-prob", 0.05, "per-decision leave+rejoin probability (churn strategy)")
		dataDir   = fs.String("data", "", "base directory for durable segment logs (empty = memory-backed); restart with the same -seed and -data to recover from the logs")
		noSync    = fs.Bool("nosync", false, "skip fsync-on-acknowledge (benchmarks only: crashes may lose acked writes)")
		readWork  = fs.Uint64("read-work", 0, "task units a served read charges its owner, so read pressure drives the strategies (0 = reads are free; see docs/STREAMING.md)")

		// Deterministic fault plan, mapped onto the live sockets
		// (docs/NETWORK.md; decision streams per docs/FAULTS.md).
		dropRate  = fs.Float64("drop-rate", 0, "per-message drop probability")
		dupRate   = fs.Float64("dup-rate", 0, "per-message duplication probability")
		delayRate = fs.Float64("delay-rate", 0, "per-message delay probability")
		maxDelay  = fs.Int("max-delay-ticks", 0, "delay bound in ticks (0 = plan default)")
		partFrac  = fs.Float64("partition", 0, "partition fraction of the ID space (0 = none)")
		partStart = fs.Int("partition-start", 0, "tick the partition forms")
		partHeal  = fs.Int("partition-heal", 0, "tick the partition heals (0 = never)")
		faultSeed = fs.Uint64("fault-seed", 0, "fault plan seed (0 = derive from -seed)")

		tracePath = fs.String("trace", "", "write the collector's per-report JSONL trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	strategy, err := netchord.ParseStrategy(*strat)
	if err != nil {
		return err
	}
	cfg := netchord.Config{
		TickEvery:          *tick,
		SuccessorListLen:   *succs,
		Replicas:           *replicas,
		ConsumePerTick:     *consume,
		DecisionEveryTicks: *every,
		MaxSybils:          *maxSybils,
		SybilThreshold:     *threshold,
		InviteThreshold:    *invite,
		ChurnProb:          *churnProb,
		DataDir:            *dataDir,
		NoSync:             *noSync,
		ReadWorkUnits:      *readWork,
	}.WithDefaults()

	var nf *netchord.NetFaults
	plan := faults.Plan{
		Seed:           *faultSeed,
		DropRate:       *dropRate,
		DupRate:        *dupRate,
		DelayRate:      *delayRate,
		MaxDelayTicks:  *maxDelay,
		PartitionFrac:  *partFrac,
		PartitionStart: *partStart,
		PartitionHeal:  *partHeal,
	}
	if plan.Seed == 0 {
		plan.Seed = *seed
	}
	if !plan.Zero() {
		if nf, err = netchord.NewNetFaults(plan, cfg.TickEvery); err != nil {
			return err
		}
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		sink, err := obs.NewFileSink(*tracePath)
		if err != nil {
			return err
		}
		tracer = obs.New(sink)
	}

	tr := netchord.TCP{}
	var hosts []*netchord.Host
	var col *netchord.Collector
	if *join == "" {
		cluster, err := netchord.NewCluster(cfg, tr, nf, *nodes, strategy, *seed, tracer)
		if err != nil {
			return err
		}
		defer cluster.Close()
		hosts, col = cluster.Hosts(), cluster.Collector()
		fmt.Fprintf(out, "ring seed=%s collector=%s hosts=%d strategy=%s\n",
			cluster.SeedAddr(), col.Addr(), len(hosts), strategy)
	} else {
		if tracer != nil {
			// The trace comes from the collector, which lives in the
			// ring-creating process; a joining process has nothing to
			// write into it.
			_ = tracer.Close()
			return fmt.Errorf("-trace requires creating the ring (omit -join)")
		}
		for i := 0; i < *nodes; i++ {
			h, err := netchord.NewHost(cfg, tr, nf, *indexBase+i, strategy, *seed, *join, *collector)
			if err != nil {
				for _, prev := range hosts {
					prev.Close()
				}
				return fmt.Errorf("host %d: %w", *indexBase+i, err)
			}
			h.Start()
			hosts = append(hosts, h)
			fmt.Fprintf(out, "host %d joined via %s as %s\n", h.Index(), *join, h.Primary().Addr())
		}
		defer func() {
			for _, h := range hosts {
				h.Close()
			}
		}()
	}

	// Run until the timer or a signal, whichever first.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if *duration > 0 {
		timer := time.NewTimer(*duration)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-sig:
		}
	} else {
		<-sig
	}

	s := summary{Hosts: len(hosts), Strategy: strategy.String()}
	if col != nil {
		s.Progress = col.Progress()
	}
	for _, h := range hosts {
		st := h.Stats()
		s.Injections += st.Injections
		s.Churns += st.Churns
		s.Sybils += st.Sybils
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	fmt.Fprintf(out, "hosts=%d strategy=%s consumed=%d residual=%d busy-ticks=%d injections=%d churns=%d sybils=%d\n",
		s.Hosts, s.Strategy, s.Progress.Consumed, s.Progress.Residual,
		s.Progress.BusyTicks, s.Injections, s.Churns, s.Sybils)
	return nil
}
