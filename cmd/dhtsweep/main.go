// Command dhtsweep reproduces the paper's tables and §VI text results by
// sweeping configurations over many seeded trials.
//
//	dhtsweep -exp table2 -trials 100      # the full Table II grid
//	dhtsweep -exp all -trials 10          # everything, reduced trials
//
// Each table prints measured values next to the paper's reported numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"chordbalance/internal/experiments"
	"chordbalance/internal/obs"
	"chordbalance/internal/prof"
	"chordbalance/internal/report"
)

type runner func(experiments.Options) error

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dhtsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhtsweep", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "baseline", "experiment to run (or 'all'); see -list")
		trials  = fs.Int("trials", 0, "trials per cell (0 = per-experiment default)")
		seed    = fs.Uint64("seed", 1, "base seed")
		workers = fs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		list    = fs.Bool("list", false, "list experiments and exit")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		md      = fs.Bool("md", false, "emit Markdown tables (for EXPERIMENTS.md)")

		// Per-trial JSONL traces (docs/OBSERVABILITY.md). Only experiments
		// that aggregate through experiments.FactorStat (the summary tables
		// and ablations) write traces; bespoke drivers run untraced.
		traceDir = fs.String("trace", "", "write per-trial JSONL traces into this directory (<exp>-c<cell>-t<trial>.jsonl)")

		// Perf-evidence profiles (docs/PERFORMANCE.md, EXPERIMENTS.md).
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	table := func(t *report.Table) error {
		switch {
		case *csv:
			return t.WriteCSV(out)
		case *md:
			return t.WriteMarkdown(out)
		}
		return t.Render(out)
	}
	summary := func(title string) func([]experiments.SummaryCell, error) error {
		return func(cells []experiments.SummaryCell, err error) error {
			if err != nil {
				return err
			}
			return table(experiments.SummaryReport(title, cells))
		}
	}

	all := []struct {
		name string
		what string
		run  runner
	}{
		{"table1", "Table I: task distribution medians", func(o experiments.Options) error {
			cells, err := experiments.Table1(o)
			if err != nil {
				return err
			}
			return table(experiments.Table1Report(cells))
		}},
		{"table2", "Table II: churn-strategy runtime factors", func(o experiments.Options) error {
			cells, err := experiments.Table2(o)
			if err != nil {
				return err
			}
			return table(experiments.Table2Report(cells))
		}},
		{"baseline", "§VI no-strategy reference factors", func(o experiments.Options) error {
			return summary("Baseline (no strategy)")(experiments.BaselineSummary(o))
		}},
		{"random", "§VI-B random injection results", func(o experiments.Options) error {
			return summary("Random injection (§VI-B)")(experiments.RandomSummary(o))
		}},
		{"neighbor", "§VI-C neighbor injection results", func(o experiments.Options) error {
			return summary("Neighbor injection (§VI-C)")(experiments.NeighborSummary(o))
		}},
		{"invitation", "§VI-D invitation results", func(o experiments.Options) error {
			return summary("Invitation (§VI-D)")(experiments.InvitationSummary(o))
		}},
		{"ablation-threshold", "§VI-B-1 sybilThreshold ablation", func(o experiments.Options) error {
			return summary("Ablation: sybilThreshold")(experiments.AblationSybilThreshold(o))
		}},
		{"ablation-maxsybils", "§VI-B-1 maxSybils ablation", func(o experiments.Options) error {
			return summary("Ablation: maxSybils (heterogeneous)")(experiments.AblationMaxSybils(o))
		}},
		{"ablation-churn", "§VI-B-1 churn-on-random ablation", func(o experiments.Options) error {
			return summary("Ablation: churn on random injection")(experiments.AblationChurnOnRandom(o))
		}},
		{"ablation-consume", "consumption-order design choice", func(o experiments.Options) error {
			return summary("Ablation: consumption order")(experiments.AblationConsumeMode(o))
		}},
		{"ablation-cadence", "decision cadence design choice", func(o experiments.Options) error {
			return summary("Ablation: decision cadence")(experiments.AblationDecisionCadence(o))
		}},
		{"ablation-avoid", "§IV-C avoid-repeats refinement", func(o experiments.Options) error {
			return summary("Ablation: neighbor avoid-repeats")(experiments.AblationAvoidRepeats(o))
		}},
		{"ablation-churn-model", "bursty vs constant churn", func(o experiments.Options) error {
			return summary("Ablation: churn arrival model")(experiments.AblationChurnModel(o))
		}},
		{"extensions", "§VII future-work strategies", func(o experiments.Options) error {
			return summary("§VII extensions: strength-aware and chosen-ID strategies")(experiments.ExtensionsSummary(o))
		}},
		{"strength-share", "who does the work in heterogeneous networks (§VII hypothesis)", func(o experiments.Options) error {
			t, err := experiments.StrengthShare(o)
			if err != nil {
				return err
			}
			return table(t)
		}},
		{"virtual-servers", "static virtual-server baseline vs dynamic Sybils", func(o experiments.Options) error {
			return summary("Static virtual servers vs dynamic Sybil injection")(experiments.VirtualServers(o))
		}},
		{"churn-curve", "footnote-2 churn-rate sweep with message costs", func(o experiments.Options) error {
			t, err := experiments.ChurnCurve(o)
			if err != nil {
				return err
			}
			return table(t)
		}},
		{"ablation-skew", "Zipf-popular workloads vs uniform keys", func(o experiments.Options) error {
			return summary("Ablation: workload skew")(experiments.AblationWorkloadSkew(o))
		}},
		{"ablation-streaming", "task arrivals during the run vs static job", func(o experiments.Options) error {
			return summary("Ablation: streaming arrivals")(experiments.AblationStreaming(o))
		}},
		{"work-series", "§V-C average work per tick (first 50 ticks)", func(o experiments.Options) error {
			t, err := experiments.WorkSeries(50, o)
			if err != nil {
				return err
			}
			return table(t)
		}},
		{"chord-hops", "O(log n) lookup validation on the real protocol", func(o experiments.Options) error {
			t, err := experiments.ChordHops(o)
			if err != nil {
				return err
			}
			return table(t)
		}},
		{"overlay-hops", "Chord vs Symphony routing (§II positioning)", func(o experiments.Options) error {
			t, err := experiments.OverlayHops(o)
			if err != nil {
				return err
			}
			return table(t)
		}},
		{"traffic", "per-strategy message overhead (§VI bandwidth claims)", func(o experiments.Options) error {
			t, err := experiments.Traffic(o)
			if err != nil {
				return err
			}
			return table(t)
		}},
		{"resilience", "replication vs adjacent failures (active-backup assumption)", func(o experiments.Options) error {
			t, err := experiments.Resilience(o)
			if err != nil {
				return err
			}
			return table(t)
		}},
		{"chaos", "runtime under deterministic fault plans (crashes, bursts, partitions)", func(o experiments.Options) error {
			cells, err := experiments.Chaos(o)
			if err != nil {
				return err
			}
			return table(experiments.ChaosReport(cells))
		}},
		{"sybilwar", "eclipse attack vs puzzle + density defenses (hostile Sybils)", func(o experiments.Options) error {
			cells, err := experiments.Sybilwar(o)
			if err != nil {
				return err
			}
			return table(experiments.SybilwarReport(cells))
		}},
		{"arcs", "§III arc-length analysis vs the exponential model", func(o experiments.Options) error {
			t, err := experiments.ArcTable(o)
			if err != nil {
				return err
			}
			return table(t)
		}},
	}

	if *list {
		for _, e := range all {
			fmt.Fprintf(out, "%-20s %s\n", e.name, e.what)
		}
		return nil
	}

	opt := experiments.Options{Trials: *trials, Seed: *seed, Workers: *workers}
	// Per-trial trace hook: each trial opens its own file sink, so the
	// parallel sweep needs no locking around the tracers themselves; only
	// the first file-creation error is retained (and surfaced after the
	// experiment finishes — the failing trial just runs untraced).
	var traceErr error
	var traceMu sync.Mutex
	makeTrace := func(name string) func(cell, trial int) *obs.Tracer {
		if *traceDir == "" {
			return nil
		}
		return func(cell, trial int) *obs.Tracer {
			path := filepath.Join(*traceDir, fmt.Sprintf("%s-c%d-t%d.jsonl", name, cell, trial))
			sink, err := obs.NewFileSink(path)
			if err != nil {
				traceMu.Lock()
				if traceErr == nil {
					traceErr = err
				}
				traceMu.Unlock()
				return nil
			}
			return obs.New(sink)
		}
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return err
		}
	}
	runOne := func(name string) error {
		for _, e := range all {
			if e.name == name {
				// Wall-clock audit: this is the only time.Now/Since pair
				// in the sweep driver, and it measures operator-facing
				// progress ("how long did this experiment take to run")
				// exclusively. The measured duration never reaches a
				// seed, a Config, or any reported statistic, so it
				// cannot perturb reproducibility. The nowallclock lint
				// rule exempts cmd/ for exactly this use; see
				// docs/LINTING.md.
				start := time.Now()
				fmt.Fprintf(out, "== %s ==\n", e.what)
				o := opt
				o.Trace = makeTrace(name)
				if err := e.run(o); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				traceMu.Lock()
				terr := traceErr
				traceMu.Unlock()
				if terr != nil {
					return fmt.Errorf("%s: opening trace sink: %w", name, terr)
				}
				fmt.Fprintf(out, "(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
				return nil
			}
		}
		return fmt.Errorf("unknown experiment %q (use -list)", name)
	}
	if *exp == "all" {
		for _, e := range all {
			if err := runOne(e.name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*exp)
}
