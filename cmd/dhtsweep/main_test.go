package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"table1", "table2", "random", "invitation",
		"ablation-consume", "extensions", "chord-hops", "arcs"} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestRunArcsText(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "arcs", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Arc-length analysis") || !strings.Contains(s, "sha1") {
		t.Errorf("arcs output wrong:\n%s", s)
	}
	if !strings.Contains(s, "(arcs in ") {
		t.Error("missing timing footer")
	}
}

func TestRunArcsCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "arcs", "-trials", "1", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "placement,nodes,") {
		t.Errorf("CSV output wrong:\n%s", out.String())
	}
}

func TestRunChordHops(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "chord-hops", "-trials", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mean hops") {
		t.Errorf("hops output wrong:\n%s", out.String())
	}
}
