// Command dhtbench measures the simulator's performance trajectory: it
// runs the paper's workloads at fixed seeds and reports ns/tick,
// allocs/tick, and total wall time as JSON (see docs/PERFORMANCE.md for
// the schema and workflow).
//
//	dhtbench -out BENCH_3.json -label pr3            # record a report
//	dhtbench -baseline old.json -out BENCH_3.json    # carry a baseline
//	dhtbench -gate BENCH_3.json -tolerance 0.15      # CI regression gate
//	dhtbench -workloads table2-churn-10k -trials 1   # one quick smoke
//
// The gate re-runs each committed workload at its recorded trial count
// and seed, so the committed tick totals double as a determinism check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"chordbalance/internal/bench"
	"chordbalance/internal/obs"
	"chordbalance/internal/prof"
	"chordbalance/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dhtbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhtbench", flag.ContinueOnError)
	var (
		trials    = fs.Int("trials", 3, "trials per workload")
		seed      = fs.Uint64("seed", 1, "base seed (trial i derives a distinct stream)")
		outFile   = fs.String("out", "", "write the JSON report to this file (default: stdout)")
		label     = fs.String("label", "", "free-form label stored in the report (e.g. pr3)")
		baseFile  = fs.String("baseline", "", "carry this report's current section as the new report's baseline")
		gateFile  = fs.String("gate", "", "regression-gate mode: compare fresh runs against this report")
		tolerance = fs.Float64("tolerance", 0.15, "allowed ns/tick regression fraction in -gate mode")
		filter    = fs.String("workloads", "", "comma-separated workload names (default: all)")
		list      = fs.Bool("list", false, "list workloads and exit")

		// Sharded-engine knobs (docs/PERFORMANCE.md, "Sharding the tick
		// engine"). -shards/-cores override every workload's config; since
		// both are pure performance knobs the measured tick totals — and
		// the gate's determinism check — are unaffected.
		shards = fs.Int("shards", 0, "override Config.Shards on every workload (0: leave workloads as defined)")
		cores  = fs.Int("cores", 0, "override Config.ShardWorkers on every workload (0: leave workloads as defined)")

		// Scaling-curve mode: re-run the selected workloads at each core
		// count in -curve-cores with identical seeds and report ns/tick,
		// speedup, and a tick-equality determinism check.
		curve      = fs.Bool("curve", false, "scaling-curve mode: vary ShardWorkers over -curve-cores")
		curveCores = fs.String("curve-cores", "1,2,4,8", "comma-separated ShardWorkers values for -curve")
		minSpeedup = fs.Float64("min-speedup", 0, "fail -curve if the largest core count's speedup is below this (skipped when the host has fewer cores)")

		// Untimed trace capture (docs/OBSERVABILITY.md): one traced,
		// unmeasured run of trial 0 per workload, written before the timed
		// trials so tracing can never contaminate the numbers.
		traceDir = fs.String("trace", "", "write an untimed per-workload JSONL trace (trial 0) into this directory")

		// Perf-evidence profiles (docs/PERFORMANCE.md, EXPERIMENTS.md).
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	workloads, err := bench.Filter(bench.Workloads(), *filter)
	if err != nil {
		return err
	}
	if *shards != 0 || *cores != 0 {
		for i := range workloads {
			inner := workloads[i].Config
			workloads[i].Config = func(seed uint64) sim.Config {
				cfg := inner(seed)
				if *shards != 0 {
					cfg.Shards = *shards
				}
				if *cores != 0 {
					cfg.ShardWorkers = *cores
				}
				return cfg
			}
		}
	}
	if *list {
		for _, w := range workloads {
			fmt.Fprintf(out, "%-20s %s\n", w.Name, w.Desc)
		}
		return nil
	}

	// Wall-clock audit: the only time reads in the benchmark driver form
	// a monotonic stopwatch injected into internal/bench. Durations are
	// reported, never fed back into seeds or configs, so reproducibility
	// of the simulated results is untouched (docs/LINTING.md).
	start := time.Now()
	clock := func() int64 { return int64(time.Since(start)) }

	progress := func(m bench.Measurement) {
		fmt.Fprintf(os.Stderr, "%-20s ticks=%-8d ns/tick=%-10.0f allocs/tick=%-9.1f wall=%v\n",
			m.Workload, m.Ticks, m.NsPerTick, m.AllocsPerTick,
			time.Duration(m.WallNs).Round(time.Millisecond))
	}

	if *traceDir != "" {
		if err := captureTraces(*traceDir, workloads, *seed); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d traces to %s\n", len(workloads), *traceDir)
	}

	if *curve {
		return runCurve(workloads, *curveCores, *trials, *seed, *label,
			*minSpeedup, *outFile, clock, out)
	}

	if *gateFile != "" {
		return runGate(*gateFile, workloads, *tolerance, clock, progress, out)
	}

	measurements, err := bench.RunAll(workloads, *trials, *seed, clock, progress)
	if err != nil {
		return err
	}
	rep := bench.Report{Schema: bench.Schema, Label: *label, Current: measurements}
	if *baseFile != "" {
		f, err := os.Open(*baseFile)
		if err != nil {
			return err
		}
		base, err := bench.Read(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		rep.Baseline = base.Current
		if rep.Label == "" {
			rep.Label = base.Label
		}
	}
	if *outFile == "" {
		return bench.Write(out, rep)
	}
	f, err := os.Create(*outFile)
	if err != nil {
		return err
	}
	if err := bench.Write(f, rep); err != nil {
		_ = f.Close() // best-effort cleanup; the write error wins
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d workloads)\n", *outFile, len(measurements))
	for _, m := range measurements {
		if sp, ok := rep.Speedup(m.Workload); ok {
			fmt.Fprintf(out, "  %-20s %.2fx vs baseline (%.0f -> %.0f ns/tick)\n",
				m.Workload, sp, mustFind(rep.Baseline, m.Workload).NsPerTick, m.NsPerTick)
		}
	}
	return nil
}

// captureTraces runs trial 0 of each workload once, untimed, with a
// per-tick tracer writing <dir>/<workload>.jsonl. The seeds match what
// the timed run's trial 0 uses (bench.TrialSeed), so a captured trace
// describes exactly the run the measurements time — without its
// overhead ever appearing in them.
func captureTraces(dir string, workloads []bench.Workload, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, w := range workloads {
		sink, err := obs.NewFileSink(filepath.Join(dir, w.Name+".jsonl"))
		if err != nil {
			return err
		}
		cfg := w.Config(bench.TrialSeed(seed, 0))
		cfg.Trace = obs.New(sink)
		_, err = sim.Run(cfg)
		if cerr := cfg.Trace.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("tracing workload %s: %w", w.Name, err)
		}
	}
	return nil
}

// runCurve measures the shard scaling curve, writes the JSON report (and
// a Markdown rendering next to it when writing to a file), and applies
// the optional minimum-speedup assertion. The assertion only fires when
// the host actually has the cores the largest point requests — a 1-core
// machine proves nothing about scaling, so there it degrades to a
// warning.
func runCurve(workloads []bench.Workload, coresCSV string, trials int,
	seed uint64, label string, minSpeedup float64, outFile string,
	clock bench.Clock, out io.Writer) error {
	cores, err := parseCores(coresCSV)
	if err != nil {
		return err
	}
	progress := func(p bench.CurvePoint) {
		fmt.Fprintf(os.Stderr, "%-20s cores=%-3d ns/tick=%-10.0f speedup=%.2fx wall=%v\n",
			p.Workload, p.Cores, p.NsPerTick, p.Speedup,
			time.Duration(p.WallNs).Round(time.Millisecond))
	}
	rep, err := bench.MeasureCurve(workloads, cores, trials, seed, clock, progress)
	if err != nil {
		return err
	}
	rep.Label = label
	if outFile == "" {
		if err := writeCurveJSON(out, rep); err != nil {
			return err
		}
	} else {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		if err := writeCurveJSON(f, rep); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		mdFile := strings.TrimSuffix(outFile, filepath.Ext(outFile)) + ".md"
		md, err := os.Create(mdFile)
		if err != nil {
			return err
		}
		if err := bench.WriteCurveMarkdown(md, rep); err != nil {
			_ = md.Close()
			return err
		}
		if err := md.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s and %s (%d points)\n", outFile, mdFile, len(rep.Points))
	}
	if minSpeedup > 0 {
		maxCores := cores[len(cores)-1]
		for _, c := range cores {
			if c > maxCores {
				maxCores = c
			}
		}
		if runtime.NumCPU() < maxCores {
			fmt.Fprintf(out, "min-speedup check skipped: host has %d cores, curve tops out at %d\n",
				runtime.NumCPU(), maxCores)
			return nil
		}
		for _, w := range workloads {
			sp, ok := rep.Speedup(w.Name, maxCores)
			if !ok {
				return fmt.Errorf("curve has no %d-core point for %s", maxCores, w.Name)
			}
			if sp < minSpeedup {
				return fmt.Errorf("%s: speedup %.2fx at %d cores below required %.2fx",
					w.Name, sp, maxCores, minSpeedup)
			}
			fmt.Fprintf(out, "min-speedup ok: %s %.2fx at %d cores (required %.2fx)\n",
				w.Name, sp, maxCores, minSpeedup)
		}
	}
	return nil
}

func writeCurveJSON(w io.Writer, rep bench.CurveReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseCores parses the -curve-cores list, requiring positive values.
func parseCores(csv string) ([]int, error) {
	var cores []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c <= 0 {
			return nil, fmt.Errorf("bad -curve-cores entry %q", part)
		}
		cores = append(cores, c)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("-curve-cores is empty")
	}
	return cores, nil
}

// runGate re-runs each committed workload at its recorded trial count and
// seed, then applies the regression gate.
func runGate(path string, workloads []bench.Workload, tolerance float64,
	clock bench.Clock, progress func(bench.Measurement), out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	committed, err := bench.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	var fresh []bench.Measurement
	for _, w := range workloads {
		trials, seed := 1, uint64(1)
		for _, c := range committed.Current {
			if c.Workload == w.Name {
				trials, seed = c.Trials, c.Seed
				break
			}
		}
		m, err := bench.Measure(w, trials, seed, clock)
		if err != nil {
			return err
		}
		progress(m)
		fresh = append(fresh, m)
	}
	if err := bench.Gate(committed, fresh, tolerance); err != nil {
		return err
	}
	fmt.Fprintf(out, "gate ok: %d workloads within %.0f%% of %s\n",
		len(fresh), tolerance*100, path)
	return nil
}

// mustFind is find for reporting paths where presence was already proven.
func mustFind(ms []bench.Measurement, name string) bench.Measurement {
	for _, m := range ms {
		if m.Workload == name {
			return m
		}
	}
	return bench.Measurement{}
}
