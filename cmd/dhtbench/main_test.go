package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chordbalance/internal/bench"
)

func TestListWorkloads(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table2-churn-10k", "baseline-1k", "oracle-1k"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-workloads", "nope"}, &out); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestRecordAndGateRoundTrip records a quick single-workload report to a
// file, then gates against it — the gate must pass against numbers just
// measured on the same machine.
func TestRecordAndGateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	var out bytes.Buffer
	if err := run([]string{
		"-workloads", "baseline-1k", "-trials", "1", "-out", path, "-label", "test",
	}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bench.Read(f)
	_ = f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Current) != 1 || rep.Current[0].Workload != "baseline-1k" ||
		!rep.Current[0].Completed || rep.Current[0].Ticks == 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	// Gate with a huge tolerance so machine noise cannot flake the test;
	// the determinism (tick-count) check is exact regardless.
	out.Reset()
	if err := run([]string{
		"-workloads", "baseline-1k", "-gate", path, "-tolerance", "100",
	}, &out); err != nil {
		t.Fatalf("gate against just-recorded report failed: %v", err)
	}
	if !strings.Contains(out.String(), "gate ok") {
		t.Errorf("gate output: %s", out.String())
	}
}
