package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chordbalance/internal/lint"
)

// writeModule lays out a throwaway module under a temp dir and chdirs
// into it so run() resolves the module root there.
func writeModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module tmpmod\n\ngo 1.22\n"}
	for name, src := range files {
		all[name] = src
	}
	for name, src := range all {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
}

func TestRunFindsViolations(t *testing.T) {
	writeModule(t, map[string]string{
		"internal/badpkg/bad.go": `package badpkg

import "math/rand"

func Draw() int { return rand.Int() }
`,
	})
	var out, errw bytes.Buffer
	code := run([]string{"./..."}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "[norand]") {
		t.Errorf("missing [norand] finding in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "internal/badpkg/bad.go:3:") {
		t.Errorf("finding not anchored at the import line:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "finding(s)") {
		t.Errorf("missing summary on stderr: %s", errw.String())
	}
}

func TestRunCleanTreeExitsZero(t *testing.T) {
	writeModule(t, map[string]string{
		"internal/goodpkg/good.go": `// Package goodpkg is a documented, rule-abiding fixture.
package goodpkg

// Add returns a+b.
func Add(a, b int) int { return a + b }
`,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"./..."}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean tree produced output: %s", out.String())
	}
}

func TestRunIgnoreDirectiveSuppresses(t *testing.T) {
	writeModule(t, map[string]string{
		"internal/badpkg/bad.go": `// Package badpkg exercises the suppression path.
package badpkg

//lint:ignore norand exercising the suppression path end to end
import "math/rand"

// Draw draws from the suppressed source.
func Draw() int { return rand.Int() }
`,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"./..."}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
}

func TestRunRulesSubset(t *testing.T) {
	// The file violates norand, but running only nowallclock must pass.
	writeModule(t, map[string]string{
		"internal/badpkg/bad.go": `package badpkg

import "math/rand"

func Draw() int { return rand.Int() }
`,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-rules", "nowallclock", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, errw.String())
	}
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errw); code != 2 {
		t.Fatalf("unknown rule: exit = %d, want 2", code)
	}
}

func TestRunJSONOutput(t *testing.T) {
	writeModule(t, map[string]string{
		"internal/badpkg/bad.go": `package badpkg

import "math/rand"

func Draw() int { return rand.Int() }
`,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errw); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	sawNorand := false
	for _, line := range lines {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line %q is not a JSON object: %v", line, err)
		}
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if f.Rule == "norand" && f.File == "internal/badpkg/bad.go" && f.Line == 3 {
			sawNorand = true
		}
	}
	if !sawNorand {
		t.Errorf("missing norand finding at internal/badpkg/bad.go:3 in:\n%s", out.String())
	}
}

func TestRunSuppressionsMode(t *testing.T) {
	writeModule(t, map[string]string{
		"internal/pkg/a.go": `// Package pkg is a fixture with a stale directive.
package pkg

// Add returns a+b.
func Add(a, b int) int {
	//lint:ignore norand nothing random here anymore
	return a + b
}
`,
	})
	var out, errw bytes.Buffer
	if code := run([]string{"-suppressions", "./..."}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0 (-suppressions is advisory)\nstderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "[lint-stale]") || !strings.Contains(out.String(), "norand") {
		t.Errorf("missing stale-directive report:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "stale suppression(s)") {
		t.Errorf("missing stderr summary: %s", errw.String())
	}
}

func TestRunSuppressionsRejectsRulesSubset(t *testing.T) {
	writeModule(t, nil)
	var out, errw bytes.Buffer
	if code := run([]string{"-suppressions", "-rules", "norand", "./..."}, &out, &errw); code != 2 {
		t.Fatalf("exit = %d, want 2 (auditing a subset would mis-report directives as stale)", code)
	}
}

// TestSelfLint runs the full registry over this repository itself: the
// tree must stay clean, and every remaining //lint:ignore must still
// suppress something.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint is slow")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := lint.FindModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	pattern := filepath.Join(root, "...")
	var out, errw bytes.Buffer
	if code := run([]string{pattern}, &out, &errw); code != 0 {
		t.Errorf("repository does not self-lint (exit %d):\n%s%s", code, out.String(), errw.String())
	}
	out.Reset()
	errw.Reset()
	if code := run([]string{"-suppressions", pattern}, &out, &errw); code != 0 {
		t.Fatalf("suppressions audit exit = %d, want 0:\n%s", code, errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("stale //lint:ignore directives:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	writeModule(t, nil)
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, rule := range []string{
		"norand", "nowallclock", "maporder", "mutexcopy", "seedflow", "errcheck-lite", "doccomment",
		"lockheld", "lockorder", "goroleak", "chanownership",
	} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing rule %s:\n%s", rule, out.String())
		}
	}
}
