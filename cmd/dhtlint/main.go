// Command dhtlint enforces the repository's determinism and concurrency
// invariants with a stdlib-only static-analysis pass (go/ast + go/types,
// no external tooling). Findings print as
//
//	file:line:col [rule] message
//
// and any finding makes the exit status nonzero, so `make lint` and CI
// fail closed. Rules, per-path exemptions, and the //lint:ignore
// suppression syntax are documented in docs/LINTING.md.
//
//	dhtlint ./...              # lint the whole module
//	dhtlint -list              # show the rule registry
//	dhtlint -rules norand ./internal/...
//	dhtlint -json ./...        # one JSON object per finding, for CI
//	dhtlint -suppressions ./... # audit //lint:ignore directives for staleness
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"chordbalance/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	flags := flag.NewFlagSet("dhtlint", flag.ContinueOnError)
	flags.SetOutput(errw)
	var (
		rulesFlag    = flags.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list         = flags.Bool("list", false, "list registered rules and exit")
		verbose      = flags.Bool("v", false, "also print type-checker diagnostics (never affect exit status)")
		jsonOut      = flags.Bool("json", false, "emit findings as JSON, one object per line (file/line/col/rule/message)")
		suppressions = flags.Bool("suppressions", false, "report stale //lint:ignore directives instead of findings; always exits 0")
	)
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *suppressions && *rulesFlag != "" {
		fmt.Fprintln(errw, "dhtlint: -suppressions audits against the full registry; it cannot be combined with -rules")
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "dhtlint:", err)
		return 2
	}
	root, modPath, err := lint.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(errw, "dhtlint:", err)
		return 2
	}

	rules, err := selectRules(modPath, *rulesFlag)
	if err != nil {
		fmt.Fprintln(errw, "dhtlint:", err)
		return 2
	}
	if *list {
		for _, r := range rules {
			fmt.Fprintf(out, "%-14s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(errw, "dhtlint:", err)
		return 2
	}

	loader := lint.NewLoader(root, modPath)
	runner := &lint.Runner{Rules: rules, ModuleRoot: root}
	var findings, stale []lint.Finding
	for _, dir := range dirs {
		pkgs, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(errw, "dhtlint: %s: %v\n", dir, err)
			return 2
		}
		if *verbose {
			for _, p := range pkgs {
				for _, terr := range p.TypeErrors {
					fmt.Fprintf(errw, "dhtlint: typecheck %s: %v\n", p.Path, terr)
				}
			}
		}
		f, s := runner.Run(pkgs...)
		findings = append(findings, f...)
		stale = append(stale, s...)
	}

	if *suppressions {
		printFindings(out, stale, *jsonOut)
		if len(stale) > 0 {
			fmt.Fprintf(errw, "dhtlint: %d stale suppression(s) — directives that no longer suppress anything\n", len(stale))
		}
		return 0
	}
	printFindings(out, findings, *jsonOut)
	if len(findings) > 0 {
		fmt.Fprintf(errw, "dhtlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// printFindings renders findings in text or JSON-lines form, in the
// runner's deterministic order.
func printFindings(out io.Writer, findings []lint.Finding, asJSON bool) {
	if !asJSON {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
		return
	}
	enc := json.NewEncoder(out)
	for _, f := range findings {
		// Encode never fails on this plain struct; an out write error
		// would already have broken the text path the same way.
		_ = enc.Encode(jsonFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Message,
		})
	}
}

// selectRules resolves -rules against the registry.
func selectRules(modPath, spec string) ([]*lint.Rule, error) {
	all := lint.DefaultRules(modPath)
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Rule, len(all))
	for _, r := range all {
		byName[r.Name] = r
	}
	var out []*lint.Rule
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (use -list)", name)
		}
		out = append(out, r)
	}
	return out, nil
}

// expandPatterns turns go-style package patterns into a sorted list of
// directories containing Go files. Supported forms: a directory path,
// or a path ending in /... for a recursive walk.
func expandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = cwd
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
