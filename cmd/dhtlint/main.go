// Command dhtlint enforces the repository's determinism and concurrency
// invariants with a stdlib-only static-analysis pass (go/ast + go/types,
// no external tooling). Findings print as
//
//	file:line:col [rule] message
//
// and any finding makes the exit status nonzero, so `make lint` and CI
// fail closed. Rules, per-path exemptions, and the //lint:ignore
// suppression syntax are documented in docs/LINTING.md.
//
//	dhtlint ./...              # lint the whole module
//	dhtlint -list              # show the rule registry
//	dhtlint -rules norand ./internal/...
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"chordbalance/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	flags := flag.NewFlagSet("dhtlint", flag.ContinueOnError)
	flags.SetOutput(errw)
	var (
		rulesFlag = flags.String("rules", "", "comma-separated subset of rules to run (default: all)")
		list      = flags.Bool("list", false, "list registered rules and exit")
		verbose   = flags.Bool("v", false, "also print type-checker diagnostics (never affect exit status)")
	)
	if err := flags.Parse(args); err != nil {
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "dhtlint:", err)
		return 2
	}
	root, modPath, err := lint.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(errw, "dhtlint:", err)
		return 2
	}

	rules, err := selectRules(modPath, *rulesFlag)
	if err != nil {
		fmt.Fprintln(errw, "dhtlint:", err)
		return 2
	}
	if *list {
		for _, r := range rules {
			fmt.Fprintf(out, "%-14s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(errw, "dhtlint:", err)
		return 2
	}

	loader := lint.NewLoader(root, modPath)
	runner := &lint.Runner{Rules: rules, ModuleRoot: root}
	var findings []lint.Finding
	for _, dir := range dirs {
		pkgs, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(errw, "dhtlint: %s: %v\n", dir, err)
			return 2
		}
		if *verbose {
			for _, p := range pkgs {
				for _, terr := range p.TypeErrors {
					fmt.Fprintf(errw, "dhtlint: typecheck %s: %v\n", p.Path, terr)
				}
			}
		}
		findings = append(findings, runner.Check(pkgs...)...)
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(errw, "dhtlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectRules resolves -rules against the registry.
func selectRules(modPath, spec string) ([]*lint.Rule, error) {
	all := lint.DefaultRules(modPath)
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Rule, len(all))
	for _, r := range all {
		byName[r.Name] = r
	}
	var out []*lint.Rule
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (use -list)", name)
		}
		out = append(out, r)
	}
	return out, nil
}

// expandPatterns turns go-style package patterns into a sorted list of
// directories containing Go files. Supported forms: a directory path,
// or a path ending in /... for a recursive walk.
func expandPatterns(cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = cwd
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
