package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chordbalance/internal/obs"
	"chordbalance/internal/sim"
	"chordbalance/internal/strategy"
)

// writeTrace runs a small deterministic simulation with a tracer and
// returns the trace file path.
func writeTrace(t *testing.T, name string, seed uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	sink, err := obs.NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Nodes:    50,
		Tasks:    1500,
		Strategy: strategy.NewRandomInjection(),
		Seed:     seed,
		Trace:    obs.New(sink),
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestDiffIdenticalTraces(t *testing.T) {
	a := writeTrace(t, "a.jsonl", 42)
	b := writeTrace(t, "b.jsonl", 42)
	out, err := runCmd(t, "diff", a, b)
	if err != nil {
		t.Fatalf("diff of same-seed traces failed: %v", err)
	}
	if !strings.HasPrefix(out, "traces identical:") {
		t.Fatalf("diff output = %q", out)
	}
	// Same-seed traces are byte-identical, not merely value-identical.
	ba, errA := os.ReadFile(a)
	bb, errB := os.ReadFile(b)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if string(ba) != string(bb) {
		t.Fatal("same-seed trace files are not byte-identical")
	}
}

// TestDiffGolden pins the divergence report's shape: different seeds
// diverge at meta, and same-meta different-value traces report the
// first differing tick and metric.
func TestDiffGolden(t *testing.T) {
	a := writeTrace(t, "a.jsonl", 1)
	b := writeTrace(t, "b.jsonl", 2)
	_, err := runCmd(t, "diff", a, b)
	if err == nil {
		t.Fatal("diff of different-seed traces succeeded")
	}
	if got, want := err.Error(), `meta "seed" differs: 1 vs 2`; got != want {
		t.Fatalf("diff error = %q, want %q", got, want)
	}
}

func TestSummaryDeterministicAndComplete(t *testing.T) {
	path := writeTrace(t, "run.jsonl", 7)
	out1, err := runCmd(t, "summary", path)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := runCmd(t, "summary", path)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("summary output is not deterministic")
	}
	for _, want := range []string{
		"meta seed           7",
		"meta strategy       random",
		"signal sim.workload.max",
		"done completed      true",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("summary missing %q:\n%s", want, out1)
		}
	}
}

func TestSeriesAndMetrics(t *testing.T) {
	path := writeTrace(t, "run.jsonl", 7)
	out, err := runCmd(t, "series", "-m", "sim.workload.max", "-w", "20", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sim.workload.max") || !strings.Contains(out, "[0..") {
		t.Fatalf("series output = %q", out)
	}
	if _, err := runCmd(t, "series", "-m", "no.such.metric", path); err == nil {
		t.Fatal("series accepted an unknown metric")
	}
	out, err = runCmd(t, "metrics", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sim.workload.hosts") || !strings.Contains(out, "hist") {
		t.Fatalf("metrics output missing histogram row:\n%s", out)
	}
}

func TestHistSingleAndPair(t *testing.T) {
	a := writeTrace(t, "a.jsonl", 5)
	b := writeTrace(t, "b.jsonl", 5)
	out, err := runCmd(t, "hist", "-t", "0", a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sim.workload.hosts at tick 0") || !strings.Contains(out, "0 (idle)") {
		t.Fatalf("hist output = %q", out)
	}
	out, err = runCmd(t, "hist", "-t", "0", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a.jsonl") || !strings.Contains(out, "b.jsonl") {
		t.Fatalf("paired hist output missing labels:\n%s", out)
	}
	if _, err := runCmd(t, "hist", "-t", "99999", a); err == nil {
		t.Fatal("hist accepted a tick with no record")
	}
}

func TestUsageErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Fatal("no-arg invocation succeeded")
	}
	if _, err := runCmd(t, "bogus"); err == nil {
		t.Fatal("unknown subcommand succeeded")
	}
}
