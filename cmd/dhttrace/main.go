// Command dhttrace analyzes the per-tick JSONL traces written by
// dhtsim/dhtsweep/dhtbench -trace (docs/OBSERVABILITY.md):
//
//	dhttrace summary run.jsonl              # meta, run shape, key signals
//	dhttrace metrics run.jsonl              # the metric catalog
//	dhttrace series -m sim.workload.max run.jsonl
//	dhttrace hist -t 0,5,35 run.jsonl       # the paper's histogram figure
//	dhttrace hist -t 35 a.jsonl b.jsonl     # side-by-side comparison
//	dhttrace diff a.jsonl b.jsonl           # tick-by-tick comparison
//
// diff exits non-zero on the first divergence, so CI can assert that two
// same-seed runs traced byte-identically.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"chordbalance/internal/obs"
	"chordbalance/internal/report"
	"chordbalance/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dhttrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: dhttrace summary|metrics|series|hist|diff [flags] <trace.jsonl> [...]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return cmdSummary(rest, out)
	case "metrics":
		return cmdMetrics(rest, out)
	case "series":
		return cmdSeries(rest, out)
	case "hist":
		return cmdHist(rest, out)
	case "diff":
		return cmdDiff(rest, out)
	}
	return fmt.Errorf("unknown subcommand %q (want summary, metrics, series, hist, or diff)", cmd)
}

// load reads and decodes one trace file.
func load(path string) (*obs.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	tr, err := obs.ReadTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// sortedKeys returns a map's keys in sorted order, so every dhttrace
// view is byte-identical run to run.
func sortedKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fmtAny renders one decoded JSON value compactly (JSON numbers decode
// as float64; render integral ones without the trailing .0).
func fmtAny(v any) string {
	if f, ok := v.(float64); ok {
		if f == float64(int64(f)) {
			return strconv.FormatInt(int64(f), 10)
		}
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return fmt.Sprint(v)
}

func cmdSummary(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhttrace summary", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dhttrace summary <trace.jsonl>")
	}
	tr, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, k := range sortedKeys(tr.Meta) {
		fmt.Fprintf(out, "meta %-14s %s\n", k, fmtAny(tr.Meta[k]))
	}
	fmt.Fprintf(out, "tick records   %d", len(tr.Ticks))
	if n := len(tr.Ticks); n > 0 {
		fmt.Fprintf(out, " (ticks %d..%d)", tr.Ticks[0].Tick, tr.Ticks[n-1].Tick)
	}
	fmt.Fprintf(out, "\nmetrics        %d\n", len(tr.MetricNames()))
	// Key signals: the paper's imbalance view, when present.
	for _, name := range []string{"sim.workload.max", "sim.workload.imbalance", "sim.workload.gini", "sim.hosts.idle"} {
		_, vals := tr.Series(name)
		if len(vals) == 0 {
			continue
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(out, "signal %-24s first=%s last=%s min=%s max=%s\n",
			name, fmtAny(vals[0]), fmtAny(vals[len(vals)-1]), fmtAny(lo), fmtAny(hi))
	}
	for _, k := range sortedKeys(tr.Done) {
		fmt.Fprintf(out, "done %-14s %s\n", k, fmtAny(tr.Done[k]))
	}
	return nil
}

func cmdMetrics(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhttrace metrics", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dhttrace metrics <trace.jsonl>")
	}
	tr, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	t := report.NewTable("", "metric", "type", "unit", "help")
	inCatalog := make(map[string]bool, len(tr.Schema))
	for _, d := range tr.Schema {
		inCatalog[d.Name] = true
		t.AddRow(d.Name, d.Type, d.Unit, d.Help)
	}
	// Metrics that appeared after the schema record (e.g. per-strategy
	// counters registered at the first decision pass) still carry values.
	for _, name := range tr.MetricNames() {
		if !inCatalog[name] {
			t.AddRow(name, "-", "-", "(registered after the schema record)")
		}
	}
	return t.Render(out)
}

func cmdSeries(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhttrace series", flag.ContinueOnError)
	metrics := fs.String("m", "", "comma-separated metric names (default: all)")
	width := fs.Int("w", 60, "sparkline width in glyphs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dhttrace series [-m names] [-w width] <trace.jsonl>")
	}
	tr, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	names := tr.MetricNames()
	if *metrics != "" {
		names = strings.Split(*metrics, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		_, vals := tr.Series(name)
		if len(vals) == 0 {
			if *metrics != "" {
				return fmt.Errorf("no series for metric %q (histograms need `dhttrace hist`; see `dhttrace metrics`)", name)
			}
			continue // histograms have no scalar series
		}
		fmt.Fprintln(out, report.SparklineRow(name, vals, *width))
	}
	return nil
}

// histAt reconstructs a stats.Histogram from one trace histogram at one
// tick, using the catalog's bucket edges. The obs bucket layout is
// [ <edges[0], [edges[i-1],edges[i]) ..., >=edges[last] ], which maps
// onto stats.Histogram's ZeroCount / Counts / OverCount exactly — so
// `dhttrace hist` renders the same figure dhtsim -snapshots prints.
func histAt(tr *obs.Trace, metric string, tick int) (*stats.Histogram, error) {
	def, ok := tr.Def(metric)
	if !ok || def.Type != "hist" {
		return nil, fmt.Errorf("metric %q is not a histogram in the trace catalog", metric)
	}
	buckets, ok := tr.HistAt(metric, tick)
	if !ok {
		return nil, fmt.Errorf("no record for tick %d", tick)
	}
	if len(buckets) != len(def.Edges)+1 {
		return nil, fmt.Errorf("tick %d: %d buckets for %d edges", tick, len(buckets), len(def.Edges))
	}
	h := &stats.Histogram{
		Edges:     def.Edges,
		Counts:    make([]int, len(def.Edges)-1),
		ZeroCount: int(buckets[0]),
		OverCount: int(buckets[len(buckets)-1]),
	}
	for i := range h.Counts {
		h.Counts[i] = int(buckets[i+1])
	}
	return h, nil
}

func cmdHist(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhttrace hist", flag.ContinueOnError)
	metric := fs.String("m", "sim.workload.hosts", "histogram metric name")
	ticks := fs.String("t", "", "comma-separated ticks (default: first and last)")
	width := fs.Int("w", 40, "bar width in characters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 && fs.NArg() != 2 {
		return fmt.Errorf("usage: dhttrace hist [-m metric] [-t ticks] <trace.jsonl> [other.jsonl]")
	}
	a, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	var b *obs.Trace
	if fs.NArg() == 2 {
		if b, err = load(fs.Arg(1)); err != nil {
			return err
		}
	}
	var at []int
	if *ticks == "" {
		if len(a.Ticks) == 0 {
			return fmt.Errorf("%s contains no tick records", fs.Arg(0))
		}
		at = []int{a.Ticks[0].Tick}
		if last := a.Ticks[len(a.Ticks)-1].Tick; last != at[0] {
			at = append(at, last)
		}
	} else {
		for _, p := range strings.Split(*ticks, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("bad tick %q", p)
			}
			at = append(at, n)
		}
	}
	for _, tick := range at {
		ha, err := histAt(a, *metric, tick)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "-- %s at tick %d --\n", *metric, tick)
		if b == nil {
			fmt.Fprint(out, ha.ASCII(*width))
			continue
		}
		hb, err := histAt(b, *metric, tick)
		if err != nil {
			return err
		}
		la := filepath.Base(fs.Arg(0))
		lb := filepath.Base(fs.Arg(1))
		if err := report.HistogramPair(out, la, ha, lb, hb, *width); err != nil {
			return err
		}
	}
	return nil
}

func cmdDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhttrace diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: dhttrace diff <a.jsonl> <b.jsonl>")
	}
	a, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	if err := diffTraces(a, b); err != nil {
		return err
	}
	fmt.Fprintf(out, "traces identical: %d tick records, %d metrics\n",
		len(a.Ticks), len(a.MetricNames()))
	return nil
}

// diffTraces compares two decoded traces tick by tick and returns a
// description of the first divergence, or nil when they match. Metadata
// differences (e.g. seed) are reported before any value difference.
func diffTraces(a, b *obs.Trace) error {
	for _, k := range sortedKeys(a.Meta) {
		if va, vb := fmtAny(a.Meta[k]), fmtAny(b.Meta[k]); va != vb {
			return fmt.Errorf("meta %q differs: %s vs %s", k, va, vb)
		}
	}
	for _, k := range sortedKeys(b.Meta) {
		if _, ok := a.Meta[k]; !ok {
			return fmt.Errorf("meta %q only in second trace", k)
		}
	}
	if len(a.Ticks) != len(b.Ticks) {
		return fmt.Errorf("tick record counts differ: %d vs %d", len(a.Ticks), len(b.Ticks))
	}
	for i := range a.Ticks {
		ta, tb := a.Ticks[i], b.Ticks[i]
		if ta.Tick != tb.Tick {
			return fmt.Errorf("record %d: tick %d vs %d", i, ta.Tick, tb.Tick)
		}
		if err := diffScalar(ta.Tick, "counter", countersAsFloats(ta.Counters), countersAsFloats(tb.Counters)); err != nil {
			return err
		}
		if err := diffScalar(ta.Tick, "gauge", ta.Gauges, tb.Gauges); err != nil {
			return err
		}
		if err := diffHists(ta.Tick, ta.Hists, tb.Hists); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(a.Done) {
		if va, vb := fmtAny(a.Done[k]), fmtAny(b.Done[k]); va != vb {
			return fmt.Errorf("done %q differs: %s vs %s", k, va, vb)
		}
	}
	return nil
}

func countersAsFloats(m map[string]int64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = float64(v)
	}
	return out
}

// diffScalar compares one tick's scalar metrics of one kind, iterating
// names in sorted order so the reported first divergence is stable.
func diffScalar(tick int, kind string, a, b map[string]float64) error {
	names := make([]string, 0, len(a)+len(b))
	for k := range a {
		names = append(names, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		va, oka := a[name]
		vb, okb := b[name]
		if oka != okb {
			return fmt.Errorf("tick %d: %s %q present in only one trace", tick, kind, name)
		}
		if va != vb {
			return fmt.Errorf("tick %d: %s %q differs: %s vs %s", tick, kind, name, fmtAny(va), fmtAny(vb))
		}
	}
	return nil
}

func diffHists(tick int, a, b map[string][]int64) error {
	names := make([]string, 0, len(a)+len(b))
	for k := range a {
		names = append(names, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		ha, oka := a[name]
		hb, okb := b[name]
		if oka != okb {
			return fmt.Errorf("tick %d: histogram %q present in only one trace", tick, name)
		}
		if len(ha) != len(hb) {
			return fmt.Errorf("tick %d: histogram %q bucket counts differ: %d vs %d", tick, name, len(ha), len(hb))
		}
		for i := range ha {
			if ha[i] != hb[i] {
				return fmt.Errorf("tick %d: histogram %q bucket %d differs: %d vs %d", tick, name, i, ha[i], hb[i])
			}
		}
	}
	return nil
}
