package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestStreamVirtualDeterministic runs the virtual streaming workload
// twice with the same seed and requires byte-identical JSON summaries —
// the reproducibility contract experiments and CI diffs rest on — and a
// different seed to produce a different summary.
func TestStreamVirtualDeterministic(t *testing.T) {
	args := func(seed string) []string {
		return []string{
			"-stream-virtual", "-json", "-seed", seed,
			"-viewers", "4", "-objects", "8", "-object-chunks", "16",
			"-chunk-bytes", "64", "-tail-bytes", "17", "-chunk-dur", "1ms",
			"-zipf", "0.9", "-midjoin-prob", "0.25", "-stream-chunks", "500",
			"-stream-slo", "3ms", "-hot-bits", "4",
			"-virtual-latency", "500us", "-virtual-jitter", "2ms", "-virtual-loss", "0.05",
		}
	}
	var a, b, c bytes.Buffer
	if err := run(args("9"), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args("9"), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed -stream-virtual summaries differ:\n%s\n---\n%s", a.String(), b.String())
	}
	if err := run(args("10"), &c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical summaries; the seed is not flowing")
	}
	for _, field := range []string{`"mode": "stream-virtual"`, `"rebuffer_rate"`, `"fetch_p99_us"`, `"verify_lost"`} {
		if !strings.Contains(a.String(), field) {
			t.Fatalf("summary missing %s:\n%s", field, a.String())
		}
	}
}

// TestStreamVirtualTextOutput exercises the human-readable path.
func TestStreamVirtualTextOutput(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-stream-virtual", "-seed", "3", "-viewers", "2", "-objects", "4",
		"-object-chunks", "8", "-chunk-bytes", "32", "-chunk-dur", "1ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stream-virtual", "rebuffer-rate=", "fetch-us p50="} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunRejectsBadFlags pins the flag validation paths.
func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-hot-bits", "-1"}, &out); err == nil {
		t.Fatal("negative -hot-bits accepted")
	}
	if err := run([]string{}, &out); err == nil {
		t.Fatal("missing -addr accepted")
	}
	if err := run([]string{"-stream"}, &out); err == nil {
		t.Fatal("-stream without -addr accepted")
	}
}
