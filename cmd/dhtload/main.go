// Command dhtload drives a running chordd cluster over real sockets: a
// seeded stream of puts and task submissions at a target request rate,
// an operation-latency histogram, a completion poll against the
// collector, and a final lookup probe — everything needed to measure
// the paper's runtime factor against a live ring instead of the
// simulator.
//
// Example — the paper's skewed workload against a local cluster:
//
//	chordd -nodes 16 -strategy invitation -seed 77 &
//	dhtload -addr 127.0.0.1:9000 -collector 127.0.0.1:9001 \
//	        -tasks 1024 -batch 8 -hot-bits 4 -rps 500 -await 60s -json
//
// With -hot-bits k every task key is drawn from one arc spanning
// 2^(Bits-k) of the identifier space, concentrating the whole job on a
// small set of owners (k=0 spreads keys uniformly). The summary reports
// achieved rates, latency percentiles from the histogram, the
// collector's progress view with the runtime factor, and the lookup
// success rate.
//
// With -stream the tool instead runs the chunked streaming workload
// (docs/STREAMING.md): it ingests a deterministic catalog of chunked
// objects, then plays N concurrent viewers with Zipf object popularity,
// bounded prefetch, and pipelined fetches, reporting rebuffer rate,
// deadline misses, and per-chunk latency percentiles. -stream-virtual
// runs the same workload against a seeded latency model with no cluster
// at all; its JSON summary is byte-identical across same-seed runs.
//
//	dhtload -stream -addr 127.0.0.1:9000 -collector 127.0.0.1:9001 \
//	        -viewers 32 -hot-bits 4 -stream-chunks 100000 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/netchord"
	"chordbalance/internal/obs"
	"chordbalance/internal/stats"
	"chordbalance/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dhtload:", err)
		os.Exit(1)
	}
}

// summary is dhtload's JSON (and text) report.
type summary struct {
	Puts           int     `json:"puts"`
	PutErrors      int     `json:"put_errors"`
	TasksSubmitted uint64  `json:"tasks_submitted"`
	SubmitErrors   int     `json:"submit_errors"`
	AchievedRPS    float64 `json:"achieved_rps"`
	LatencyP50us   float64 `json:"latency_p50_us"`
	LatencyP90us   float64 `json:"latency_p90_us"`
	LatencyP99us   float64 `json:"latency_p99_us"`

	Completed     bool    `json:"completed"`
	Consumed      uint64  `json:"consumed"`
	Residual      uint64  `json:"residual"`
	BusyTicks     int     `json:"busy_ticks"`
	RuntimeFactor float64 `json:"runtime_factor"`

	Lookups       int     `json:"lookups"`
	LookupsOK     int     `json:"lookups_ok"`
	LookupSuccess float64 `json:"lookup_success"`

	// Durability verification (-verify): every acknowledged write must
	// later read back at >= its acknowledged version, with the exact
	// bytes when the version matches. VerifyLost must be zero on any
	// run — an acknowledged write that cannot be read back at its
	// version is a broken durability contract, not bad luck.
	VerifyAcked int `json:"verify_acked,omitempty"`
	VerifyLost  int `json:"verify_lost,omitempty"`
	VerifyStale int `json:"verify_stale,omitempty"`

	// Net is the collector's cumulative counter view (store acks,
	// anti-entropy work, streaming deliveries), present when a collector
	// address was given. It appears in both the put/task summary and the
	// -stream summary so the two run kinds are directly diffable.
	Net *netCounters `json:"net,omitempty"`
}

// netCounters is the slice of the collector's Progress that both
// workload modes report.
type netCounters struct {
	Hosts              int    `json:"hosts"`
	Consumed           uint64 `json:"consumed"`
	Residual           uint64 `json:"residual"`
	StoreAcked         int64  `json:"store_acked"`
	AntiEntropyRounds  int64  `json:"anti_entropy_rounds"`
	AntiEntropyRepairs int64  `json:"anti_entropy_repairs"`
	AntiEntropyBytes   int64  `json:"anti_entropy_bytes"`
	StreamChunks       uint64 `json:"stream_chunks"`
	StreamDeadlineMiss uint64 `json:"stream_deadline_miss"`
	StreamRebuffers    uint64 `json:"stream_rebuffers"`
	StreamBytes        uint64 `json:"stream_bytes"`
}

// netCountersFrom projects a collector Progress into the summary shape.
func netCountersFrom(p netchord.Progress) netCounters {
	return netCounters{
		Hosts:              p.Hosts,
		Consumed:           p.Consumed,
		Residual:           p.Residual,
		StoreAcked:         p.Acked,
		AntiEntropyRounds:  p.AntiEntropyRounds,
		AntiEntropyRepairs: p.AntiEntropyRepairs,
		AntiEntropyBytes:   p.AntiEntropyBytes,
		StreamChunks:       p.StreamChunks,
		StreamDeadlineMiss: p.StreamDeadlineMiss,
		StreamRebuffers:    p.StreamRebuffers,
		StreamBytes:        p.StreamBytes,
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dhtload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "address of any ring member (required)")
		collector = fs.String("collector", "", "collector address (enables -await and the runtime factor)")
		seed      = fs.Uint64("seed", 1, "deterministic key/token stream seed")
		puts      = fs.Int("puts", 32, "keys to put before the task stream")
		valueLen  = fs.Int("value-len", 16, "value size in bytes for puts")
		tasks     = fs.Uint64("tasks", 1024, "total task units to submit")
		batch     = fs.Uint64("batch", 8, "units per task submission")
		hotBits   = fs.Int("hot-bits", 0, "task keys land in one arc of 2^(Bits-k) ids (0 = uniform)")
		rps       = fs.Float64("rps", 500, "target request rate for puts and submissions")
		await     = fs.Duration("await", 0, "poll the collector until the workload completes (0 = don't wait)")
		lookups   = fs.Int("lookups", 64, "random lookups probed after the workload")
		verify    = fs.Int("verify", 0, "durability verification writes over a small key pool (0 = off); the summary's verify_lost must be 0")
		tick      = fs.Duration("tick", 5*time.Millisecond, "logical tick length (must match the cluster's)")
		jsonOut   = fs.Bool("json", false, "emit the summary as JSON (for scripting)")
		tracePath = fs.String("trace", "", "write the latency histogram as a JSONL trace to this file")

		stream        = fs.Bool("stream", false, "run the chunked streaming workload instead of the put/task phases")
		streamVirtual = fs.Bool("stream-virtual", false, "stream against a seeded virtual network model: no cluster, byte-identical JSON per seed")
		viewers       = fs.Int("viewers", 16, "concurrent playback sessions (-stream)")
		objects       = fs.Int("objects", 64, "objects in the streaming catalog (-stream)")
		objectChunks  = fs.Int("object-chunks", 128, "chunks per object (-stream)")
		chunkBytes    = fs.Int("chunk-bytes", 2048, "payload bytes per chunk (-stream)")
		tailBytes     = fs.Int("tail-bytes", 0, "bytes in each object's final chunk, 0 = full size (-stream)")
		chunkDur      = fs.Duration("chunk-dur", 2*time.Millisecond, "playback duration of one chunk, i.e. chunk bytes over the bitrate (-stream)")
		zipfS         = fs.Float64("zipf", 1.0, "object popularity exponent, 0 = uniform (-stream)")
		startupChunks = fs.Int("startup-chunks", 2, "chunks buffered before playback starts (-stream)")
		streamWindow  = fs.Int("stream-window", 16, "prefetch window in chunks ahead of the playhead, 0 = unbounded (-stream)")
		streamInFl    = fs.Int("stream-inflight", 4, "pipelined fetches per viewer (-stream)")
		midJoin       = fs.Float64("midjoin-prob", 0.1, "probability a session joins mid-object (-stream)")
		streamChunks  = fs.Uint64("stream-chunks", 0, "stop after this many delivered chunks, 0 = one session per viewer (-stream)")
		streamSLO     = fs.Duration("stream-slo", 0, "per-chunk fetch latency objective, 0 = off (-stream)")
		streamMax     = fs.Duration("stream-max", 0, "hard wall-clock cap on the streaming run, 0 = none (-stream)")
		ingestWorkers = fs.Int("ingest-workers", 8, "parallel put workers during catalog ingest (-stream)")
		vLatency      = fs.Duration("virtual-latency", time.Millisecond, "base fetch latency of the virtual network (-stream-virtual)")
		vJitter       = fs.Duration("virtual-jitter", 2*time.Millisecond, "mean exponential latency jitter of the virtual network (-stream-virtual)")
		vLoss         = fs.Float64("virtual-loss", 0, "fetch loss probability of the virtual network (-stream-virtual)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *hotBits < 0 || *hotBits >= ids.Bits {
		return fmt.Errorf("-hot-bits must be in [0, %d)", ids.Bits)
	}
	if *stream || *streamVirtual {
		return runStream(streamOpts{
			virtual:       *streamVirtual,
			addr:          *addr,
			collector:     *collector,
			seed:          *seed,
			hotBits:       *hotBits,
			tick:          *tick,
			jsonOut:       *jsonOut,
			tracePath:     *tracePath,
			viewers:       *viewers,
			objects:       *objects,
			objectChunks:  *objectChunks,
			chunkBytes:    *chunkBytes,
			tailBytes:     *tailBytes,
			chunkDur:      *chunkDur,
			zipfS:         *zipfS,
			startupChunks: *startupChunks,
			window:        *streamWindow,
			inflight:      *streamInFl,
			midJoin:       *midJoin,
			target:        *streamChunks,
			slo:           *streamSLO,
			maxRun:        *streamMax,
			ingestWorkers: *ingestWorkers,
			vLatency:      *vLatency,
			vJitter:       *vJitter,
			vLoss:         *vLoss,
		}, out)
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if *batch == 0 {
		*batch = 1
	}

	cfg := netchord.Config{TickEvery: *tick}.WithDefaults()
	tr := netchord.TCP{}
	client := netchord.NewClient(cfg, tr, *addr, *seed)
	defer client.Close()
	if err := client.Ping(); err != nil {
		return fmt.Errorf("ping %s: %w", *addr, err)
	}

	// The latency histogram rides the obs pipeline so dhttrace-style
	// tooling can read load runs the same way it reads simulator traces.
	var tracer *obs.Tracer
	reg := obs.NewRegistry()
	if *tracePath != "" {
		sink, err := obs.NewFileSink(*tracePath)
		if err != nil {
			return err
		}
		tracer = obs.New(sink)
		reg = tracer.Registry()
	}
	hist := reg.Histogram("load.latency", "us", "operation latency", obs.LogEdges(1e7, 3))
	ops := reg.Counter("load.ops", "ops", "operations issued")
	errs := reg.Counter("load.errors", "ops", "operations failed")
	vAcked := reg.Counter("load.verify.acked", "writes", "verification writes acknowledged")
	vLost := reg.Counter("load.verify.lost", "writes", "acknowledged writes that failed to read back")
	vStale := reg.Counter("load.verify.stale", "reads", "reads that transiently observed an older version")
	if tracer != nil {
		tracer.EmitMeta(obs.F{K: "source", V: "dhtload"})
		tracer.EmitSchema()
	}

	rng := xrand.New(*seed)
	var latencies []float64
	interval := time.Duration(float64(time.Second) / *rps)
	pace := time.NewTicker(interval)
	defer pace.Stop()
	timed := func(op func() error) error {
		<-pace.C
		t0 := time.Now()
		err := op()
		us := float64(time.Since(t0)) / float64(time.Microsecond)
		hist.Observe(us)
		latencies = append(latencies, us)
		ops.Add(1)
		if err != nil {
			errs.Add(1)
		}
		return err
	}

	s := summary{}
	started := time.Now()

	// Phase 1: seeded puts, uniformly spread.
	value := make([]byte, *valueLen)
	for i := range value {
		value[i] = byte(rng.Intn(256))
	}
	for i := 0; i < *puts; i++ {
		key := ids.Random(rng)
		if err := timed(func() error { return client.Put(key, value) }); err != nil {
			s.PutErrors++
		} else {
			s.Puts++
		}
	}

	// Phase 1.5 (-verify): the durability verification stream. A small
	// key pool is overwritten repeatedly; every acknowledged write is
	// remembered with its acknowledged version, checked read-your-writes
	// immediately, and swept again at the end. Re-used keys make the
	// read-latest check meaningful: an old replica resurrecting a
	// superseded version is as much a bug as a lost write.
	type ackedWrite struct {
		ver   uint64
		value []byte
	}
	var verifyKeys []ids.ID
	verified := make(map[ids.ID]ackedWrite)
	// checkKey reads key until it observes the latest acknowledged
	// state (version >= acked, exact bytes at equality), counting
	// transient stale observations; retries ride out churn and
	// anti-entropy lag before a miss is declared a loss.
	checkKey := func(key ids.ID, want ackedWrite, attempts int) {
		sawStale := false
		for a := 0; a < attempts; a++ {
			if a > 0 {
				time.Sleep(cfg.Ticks(cfg.StabilizeEveryTicks * 2))
			}
			v, ver, err := client.GetVer(key)
			if err == nil && ver > want.ver {
				break // overwritten by a later acked write: fine
			}
			if err == nil && ver == want.ver && string(v) == string(want.value) {
				break
			}
			sawStale = true
			if a == attempts-1 {
				s.VerifyLost++
				vLost.Add(1)
				return
			}
		}
		if sawStale {
			s.VerifyStale++
			vStale.Add(1)
		}
	}
	if *verify > 0 {
		pool := *verify / 4
		if pool < 1 {
			pool = 1
		}
		if pool > 64 {
			pool = 64
		}
		for i := 0; i < pool; i++ {
			verifyKeys = append(verifyKeys, ids.Random(rng))
		}
		for i := 0; i < *verify; i++ {
			key := verifyKeys[rng.Intn(len(verifyKeys))]
			val := []byte(fmt.Sprintf("verify-%s-%d", key.Short(), i))
			var ver uint64
			err := timed(func() error {
				var err error
				ver, err = client.PutVer(key, val)
				return err
			})
			if err != nil {
				s.PutErrors++
				continue // never acknowledged: nothing to hold the ring to
			}
			s.VerifyAcked++
			vAcked.Add(1)
			verified[key] = ackedWrite{ver: ver, value: val}
			// Read-your-writes: the ack means durable now, not eventually.
			checkKey(key, verified[key], 3)
		}
	}

	// Phase 2: the task stream. With -hot-bits the whole job lands in
	// one arc — the paper's skewed workload that a single primary must
	// shed through its strategy.
	arcLow := ids.Random(rng)
	arcHigh := arcLow
	if *hotBits > 0 {
		arcHigh = arcLow.Add(ids.PowerOfTwo(ids.Bits - *hotBits))
	}
	for s.TasksSubmitted < *tasks {
		units := *batch
		if rest := *tasks - s.TasksSubmitted; units > rest {
			units = rest
		}
		var key ids.ID
		if *hotBits > 0 {
			k, err := ids.UniformInRange(rng, arcLow, arcHigh)
			if err != nil {
				return err
			}
			key = k
		} else {
			key = ids.Random(rng)
		}
		if err := timed(func() error { return client.SubmitTask(key, units) }); err != nil {
			s.SubmitErrors++
			continue // those units never entered the system
		}
		s.TasksSubmitted += units
	}
	if elapsed := time.Since(started).Seconds(); elapsed > 0 {
		s.AchievedRPS = float64(len(latencies)) / elapsed
	}
	if len(latencies) > 0 {
		s.LatencyP50us = stats.Percentile(latencies, 50)
		s.LatencyP90us = stats.Percentile(latencies, 90)
		s.LatencyP99us = stats.Percentile(latencies, 99)
	}

	// Phase 3: poll the collector until every submitted unit is
	// consumed and nothing is residual.
	if *collector != "" && *await > 0 {
		deadline := time.Now().Add(*await)
		for {
			p, err := netchord.FetchProgress(tr, cfg, *collector)
			if err == nil {
				s.Consumed, s.Residual, s.BusyTicks = p.Consumed, p.Residual, p.BusyTicks
				s.RuntimeFactor = p.RuntimeFactor(s.TasksSubmitted)
				if p.Consumed >= s.TasksSubmitted && p.Residual == 0 {
					s.Completed = true
					break
				}
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(cfg.Ticks(cfg.ReportEveryTicks * 4))
		}
	}

	// The collector's cumulative counter view, for diffing against
	// streaming runs (see netCounters).
	if *collector != "" {
		if p, err := netchord.FetchStats(tr, cfg, *collector); err == nil {
			nc := netCountersFrom(p)
			s.Net = &nc
		}
	}

	// Phase 3.5 (-verify): the read-latest sweep. After the workload —
	// and whatever churn, Sybils, and faults it drove — every key's
	// latest acknowledged write must still read back. More retries than
	// the inline check: the cluster may still be reconverging.
	for _, key := range verifyKeys {
		want, ok := verified[key]
		if !ok {
			continue // no write to this key was ever acknowledged
		}
		checkKey(key, want, 8)
	}

	// Phase 4: the lookup probe — routability after whatever the run
	// (faults, churn, Sybils) did to the ring.
	for i := 0; i < *lookups; i++ {
		s.Lookups++
		if _, _, err := client.Lookup(ids.Random(rng)); err == nil {
			s.LookupsOK++
		}
	}
	if s.Lookups > 0 {
		s.LookupSuccess = float64(s.LookupsOK) / float64(s.Lookups)
	}

	if tracer != nil {
		tracer.EmitTick(int(time.Since(started) / cfg.TickEvery))
		if err := tracer.Close(); err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	fmt.Fprintf(out, "puts=%d/%d tasks=%d submit-errors=%d rps=%.1f\n",
		s.Puts, *puts, s.TasksSubmitted, s.SubmitErrors, s.AchievedRPS)
	fmt.Fprintf(out, "latency-us p50=%.0f p90=%.0f p99=%.0f\n",
		s.LatencyP50us, s.LatencyP90us, s.LatencyP99us)
	if *collector != "" && *await > 0 {
		fmt.Fprintf(out, "completed=%v consumed=%d residual=%d busy-ticks=%d runtime-factor=%.3f\n",
			s.Completed, s.Consumed, s.Residual, s.BusyTicks, s.RuntimeFactor)
	}
	if *verify > 0 {
		fmt.Fprintf(out, "verify acked=%d lost=%d stale=%d\n", s.VerifyAcked, s.VerifyLost, s.VerifyStale)
	}
	if s.Net != nil {
		fmt.Fprintf(out, "store acked=%d anti-entropy rounds=%d repairs=%d bytes=%d\n",
			s.Net.StoreAcked, s.Net.AntiEntropyRounds, s.Net.AntiEntropyRepairs, s.Net.AntiEntropyBytes)
	}
	fmt.Fprintf(out, "lookup-success=%.3f (%d/%d)\n", s.LookupSuccess, s.LookupsOK, s.Lookups)
	return nil
}
