package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"chordbalance/internal/ids"
	"chordbalance/internal/netchord"
	"chordbalance/internal/obs"
	"chordbalance/internal/streamload"
	"chordbalance/internal/xrand"
)

// streamOpts is the parsed -stream flag set (see run for the flags).
type streamOpts struct {
	virtual   bool
	addr      string
	collector string
	seed      uint64
	hotBits   int
	tick      time.Duration
	jsonOut   bool
	tracePath string

	viewers       int
	objects       int
	objectChunks  int
	chunkBytes    int
	tailBytes     int
	chunkDur      time.Duration
	zipfS         float64
	startupChunks int
	window        int
	inflight      int
	midJoin       float64
	target        uint64
	slo           time.Duration
	maxRun        time.Duration
	ingestWorkers int
	vLatency      time.Duration
	vJitter       time.Duration
	vLoss         float64
}

// streamSummary is the -stream JSON (and text) report. A virtual run's
// summary contains no wall-clock-dependent field, which is what makes
// same-seed runs byte-identical.
type streamSummary struct {
	Mode         string `json:"mode"`
	Seed         uint64 `json:"seed"`
	HotBits      int    `json:"hot_bits"`
	Objects      int    `json:"objects"`
	ObjectChunks int    `json:"object_chunks"`
	ChunkBytes   int    `json:"chunk_bytes"`
	// IngestAcked is chunks acknowledged by the ring during catalog
	// ingest (TotalChunks by construction on a virtual run).
	IngestAcked uint64            `json:"ingest_acked"`
	Stream      streamload.Result `json:"stream"`
	// RouteHits and RouteLookups split the read path: direct fetches off
	// a cached route versus full ownership resolutions (cold keys plus
	// every churn-invalidated route).
	RouteHits    uint64 `json:"route_hits"`
	RouteLookups uint64 `json:"route_lookups"`
	// VerifyLost counts delivered chunks whose bytes did not match the
	// catalog — the streaming analogue of the put workload's verify_lost,
	// and it must be zero on every run.
	VerifyLost uint64       `json:"verify_lost"`
	Net        *netCounters `json:"net,omitempty"`
}

// countingPutter counts acknowledged puts during catalog ingest.
type countingPutter struct {
	c     *netchord.Client
	acked atomic.Uint64
}

func (p *countingPutter) Put(key ids.ID, value []byte) error {
	if err := p.c.Put(key, value); err != nil {
		return err
	}
	p.acked.Add(1)
	return nil
}

// runStream runs the chunked streaming workload: against a live cluster
// with -stream, or against the seeded virtual network model with
// -stream-virtual.
func runStream(o streamOpts, out io.Writer) error {
	rng := xrand.New(o.seed)
	cat := &streamload.Catalog{
		Objects:      o.objects,
		ObjectChunks: o.objectChunks,
		ChunkBytes:   o.chunkBytes,
		TailBytes:    o.tailBytes,
		Salt:         o.seed,
		HotBits:      o.hotBits,
	}
	if o.hotBits > 0 {
		cat.ArcLow = ids.Random(rng)
	}
	if err := cat.Validate(); err != nil {
		return err
	}
	scfg := streamload.Config{
		Catalog:       cat,
		Viewers:       o.viewers,
		Seed:          o.seed,
		ZipfS:         o.zipfS,
		ChunkDur:      o.chunkDur,
		StartupChunks: o.startupChunks,
		Window:        o.window,
		MaxInFlight:   o.inflight,
		MidJoinProb:   o.midJoin,
		TargetChunks:  o.target,
		SLO:           o.slo,
	}

	sum := streamSummary{
		Mode:         "stream",
		Seed:         o.seed,
		HotBits:      o.hotBits,
		Objects:      o.objects,
		ObjectChunks: o.objectChunks,
		ChunkBytes:   o.chunkBytes,
	}
	var err error
	if o.virtual {
		sum.Mode = "stream-virtual"
		sum.IngestAcked = uint64(cat.TotalChunks()) // content exists by construction
		sum.Stream, err = streamload.RunVirtual(streamload.VirtualConfig{
			Config:        scfg,
			BaseLatency:   o.vLatency,
			JitterLatency: o.vJitter,
			LossProb:      o.vLoss,
		})
		if err != nil {
			return err
		}
	} else if err = runStreamLive(o, cat, scfg, &sum); err != nil {
		return err
	}

	if err := emitStreamTrace(o, sum.Stream); err != nil {
		return err
	}
	if o.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}
	r := sum.Stream
	fmt.Fprintf(out, "%s viewers=%d sessions=%d chunks=%d bytes=%d fetch-errors=%d\n",
		sum.Mode, r.Viewers, r.Sessions, r.Chunks, r.Bytes, r.FetchErrors)
	fmt.Fprintf(out, "rebuffer-rate=%.6f deadline-miss-rate=%.6f stall-ms=%.1f startup-us p50=%.0f p99=%.0f\n",
		r.RebufferRate, r.DeadlineMissRate, float64(r.StallNs)/1e6, r.StartupP50us, r.StartupP99us)
	fmt.Fprintf(out, "fetch-us p50=%.0f p90=%.0f p99=%.0f slo-miss=%d\n",
		r.FetchP50us, r.FetchP90us, r.FetchP99us, r.SLOMiss)
	if !o.virtual {
		fmt.Fprintf(out, "ingest-acked=%d route-hits=%d route-lookups=%d verify-lost=%d\n",
			sum.IngestAcked, sum.RouteHits, sum.RouteLookups, sum.VerifyLost)
	}
	if sum.Net != nil {
		fmt.Fprintf(out, "net stream-chunks=%d miss=%d rebuffers=%d bytes=%d store-acked=%d\n",
			sum.Net.StreamChunks, sum.Net.StreamDeadlineMiss, sum.Net.StreamRebuffers,
			sum.Net.StreamBytes, sum.Net.StoreAcked)
	}
	return nil
}

// runStreamLive ingests the catalog into a live ring and plays the
// sessions through the real-time engine, pushing cumulative counters to
// the collector along the way.
func runStreamLive(o streamOpts, cat *streamload.Catalog, scfg streamload.Config, sum *streamSummary) error {
	if o.addr == "" {
		return fmt.Errorf("-addr is required (or use -stream-virtual)")
	}
	cfg := netchord.Config{TickEvery: o.tick}.WithDefaults()
	tr := netchord.TCP{}
	client := netchord.NewClient(cfg, tr, o.addr, o.seed)
	defer client.Close()
	if err := client.Ping(); err != nil {
		return fmt.Errorf("ping %s: %w", o.addr, err)
	}

	ing := &countingPutter{c: client}
	if err := streamload.Ingest(ing, cat, o.ingestWorkers); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	sum.IngestAcked = ing.acked.Load()

	fetcher := streamload.NewCachedFetcher(client, cat, true)
	eng, err := streamload.NewEngine(scfg)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if o.maxRun > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.maxRun)
		defer cancel()
	}

	// Reporter loop: push the monotone delivery counters to the
	// collector on the hosts' reporting cadence, so an observer can
	// watch a stream run converge the same way it watches task runs.
	report := func() {
		t := eng.Totals()
		_ = client.ReportStream(o.collector, t.Chunks, t.DeadlineMiss, t.Rebuffers, t.Bytes)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	if o.collector != "" {
		go func() {
			defer close(done)
			tick := time.NewTicker(cfg.Ticks(cfg.ReportEveryTicks * 2))
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					report()
				case <-stop:
					return
				}
			}
		}()
	} else {
		close(done)
	}

	sum.Stream = eng.Run(ctx, fetcher)
	close(stop)
	<-done
	if o.collector != "" {
		report() // final cumulative totals, racing nothing
		if p, err := netchord.FetchStats(tr, cfg, o.collector); err == nil {
			nc := netCountersFrom(p)
			sum.Net = &nc
		}
	}
	sum.RouteHits, sum.RouteLookups = fetcher.RouteStats()
	sum.VerifyLost = fetcher.Corrupt()
	return nil
}

// emitStreamTrace writes the per-chunk latency histogram and delivery
// counters as a JSONL trace, mirroring the put/task workload's -trace.
func emitStreamTrace(o streamOpts, r streamload.Result) error {
	if o.tracePath == "" {
		return nil
	}
	sink, err := obs.NewFileSink(o.tracePath)
	if err != nil {
		return err
	}
	tracer := obs.New(sink)
	reg := tracer.Registry()
	hist := reg.Histogram("stream.fetch_us", "us", "per-chunk fetch latency", obs.LogEdges(1e7, 3))
	chunks := reg.Counter("stream.chunks", "chunks", "chunks delivered")
	miss := reg.Counter("stream.deadline_miss", "chunks", "chunks past their playback deadline")
	rebuf := reg.Counter("stream.rebuffers", "stalls", "playhead stalls")
	slo := reg.Counter("stream.slo_miss", "chunks", "fetches over the latency SLO")
	tracer.EmitMeta(obs.F{K: "source", V: "dhtload-stream"})
	tracer.EmitSchema()
	for _, us := range r.LatsUs {
		hist.Observe(us)
	}
	chunks.Add(int64(r.Chunks))
	miss.Add(int64(r.DeadlineMiss))
	rebuf.Add(int64(r.Rebuffers))
	slo.Add(int64(r.SLOMiss))
	tracer.EmitTick(int(r.DurationNs / int64(o.tick)))
	return tracer.Close()
}
