package main

import (
	"strings"
	"testing"
)

func script(t *testing.T, lines ...string) string {
	t.Helper()
	var out strings.Builder
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	if err := run(in, &out, false); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

func TestCreatePutGet(t *testing.T) {
	out := script(t,
		"create 8",
		"put alice hello world",
		"get alice",
		"quit")
	if !strings.Contains(out, "overlay up: 8 nodes") {
		t.Errorf("missing create ack:\n%s", out)
	}
	if !strings.Contains(out, "hello world") {
		t.Errorf("missing value:\n%s", out)
	}
}

func TestLookupAndRing(t *testing.T) {
	out := script(t,
		"create 6",
		"lookup somekey",
		"ring",
		"stats",
		"quit")
	if !strings.Contains(out, "owner ") || !strings.Contains(out, "hops") {
		t.Errorf("lookup output missing:\n%s", out)
	}
	if !strings.Contains(out, "  0  ") {
		t.Errorf("ring listing missing:\n%s", out)
	}
	if !strings.Contains(out, "messages=") {
		t.Errorf("stats missing:\n%s", out)
	}
}

func TestKillAndHealKeepsData(t *testing.T) {
	out := script(t,
		"create 12",
		"put k important",
		"maint 3",
		"kill 4",
		"heal",
		"get k",
		"quit")
	if !strings.Contains(out, "killed ") {
		t.Errorf("kill ack missing:\n%s", out)
	}
	if !strings.Contains(out, "converged after ") {
		t.Errorf("heal ack missing:\n%s", out)
	}
	if !strings.Contains(out, "important") {
		t.Errorf("data lost after crash:\n%s", out)
	}
}

func TestJoinAndLeave(t *testing.T) {
	out := script(t,
		"create 4",
		"join",
		"heal",
		"leave 2",
		"heal",
		"ring",
		"quit")
	if !strings.Contains(out, "joined ") || !strings.Contains(out, "left ") {
		t.Errorf("join/leave missing:\n%s", out)
	}
	// 4 + 1 - 1 = 4 nodes: indices 0..3 present, 4 absent.
	if !strings.Contains(out, "  3  ") || strings.Contains(out, "  4  ") {
		t.Errorf("ring size wrong:\n%s", out)
	}
}

func TestErrorsAreReportedNotFatal(t *testing.T) {
	out := script(t,
		"get before-create",
		"create 3",
		"bogus",
		"get missing",
		"kill 99",
		"put onlykey",
		"quit")
	wants := []string{
		"no overlay yet",
		"unknown command",
		"not found",
		"usage: kill INDEX",
		"usage: put KEY VALUE",
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("missing error %q:\n%s", w, out)
		}
	}
}

func TestTraceAndDist(t *testing.T) {
	out := script(t,
		"create 8",
		"put doc1 x",
		"put doc2 y",
		"trace doc1",
		"dist",
		"stats",
		"quit")
	if !strings.Contains(out, " => ") {
		t.Errorf("trace output missing:\n%s", out)
	}
	if !strings.Contains(out, " keys") {
		t.Errorf("dist output missing:\n%s", out)
	}
	if !strings.Contains(out, "mean-replication=") || !strings.Contains(out, "ring-ok=true") {
		t.Errorf("stats output missing:\n%s", out)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	out := script(t,
		"# a comment",
		"",
		"create 3",
		"help",
		"quit")
	if !strings.Contains(out, "commands:") {
		t.Errorf("help missing:\n%s", out)
	}
}

func TestPlanChaosPartitionHeal(t *testing.T) {
	out := script(t,
		"create 16",
		"put k important",
		"maint 5",
		"plan",
		"plan crash=0.02 burst-every=5 burst-size=1 seed=9",
		"plan",
		"chaos 20 200",
		"heal",
		"get k",
		"partition 0.5",
		"stats",
		"heal",
		"get k",
		"plan off",
		"quit")
	for _, want := range []string{
		"no fault plan installed",
		"fault plan installed",
		"crash=0.02",
		"mean-time-to-repair=",
		"keys: tracked=1 recovered=1 lost=0",
		"partitioned at 0.5",
		"partition lifted",
		"converged after",
		"important",
		"fault plan cleared",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestChaosWithoutPlanErrors(t *testing.T) {
	out := script(t,
		"create 4",
		"chaos 5",
		"partition 2",
		"plan nonsense",
		"quit")
	for _, want := range []string{
		"no fault plan installed",
		"outside (0,1)",
		"bad plan setting",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestAttackAndDefend(t *testing.T) {
	out := script(t,
		"create 12",
		"attack budget=6 start=0.2 width=0.0625 seed=3",
		"attack",
		"defend thr=4 window=4",
		"attack",
		"attack off",
		"quit")
	if !strings.Contains(out, "attack up: 6 hostile identities") {
		t.Errorf("attack launch missing:\n%s", out)
	}
	if !strings.Contains(out, "live=6") {
		t.Errorf("attack status missing:\n%s", out)
	}
	if !strings.Contains(out, "evicted-hostile=") || !strings.Contains(out, "false-eviction-rate=") {
		t.Errorf("defend report missing:\n%s", out)
	}
	if !strings.Contains(out, "attack withdrawn") {
		t.Errorf("attack off ack missing:\n%s", out)
	}
	// Six identities crammed into 1/16 of a 12-node ring must trip a
	// threshold-4 scan: at least one hostile eviction.
	if strings.Contains(out, "evicted-hostile=0 ") {
		t.Errorf("defend pass never evicted a hostile identity:\n%s", out)
	}
}

func TestDefendHonestRingQuiet(t *testing.T) {
	out := script(t,
		"create 10",
		"defend thr=8 window=4",
		"quit")
	if !strings.Contains(out, "flagged=0") {
		t.Errorf("honest ring flagged at threshold 8:\n%s", out)
	}
}

func TestAttackBadArgs(t *testing.T) {
	out := script(t,
		"create 4",
		"attack bogus=1",
		"attack budget=x",
		"defend thr=x",
		"attack",
		"quit")
	for _, want := range []string{"unknown attack key", "bad budget value", "bad thr value", "no attack installed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
