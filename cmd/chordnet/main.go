// Command chordnet is an interactive shell over a live Chord overlay —
// the internal/chord protocol with background maintenance — for poking at
// the substrate the simulator abstracts: watch lookups route, crash
// nodes, and see replication keep data alive.
//
//	$ go run ./cmd/chordnet
//	chord> create 16
//	chord> put alice hello
//	chord> kill 3
//	chord> maint 40
//	chord> get alice
//	hello
//
// Commands also stream from stdin, so it is scriptable:
//
//	printf 'create 8\nput k v\nget k\n' | go run ./cmd/chordnet
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"chordbalance/internal/adversary"
	"chordbalance/internal/chord"
	"chordbalance/internal/faults"
	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
	"chordbalance/internal/xrand"
)

func main() {
	if err := run(os.Stdin, os.Stdout, isTerminalLike()); err != nil {
		fmt.Fprintln(os.Stderr, "chordnet:", err)
		os.Exit(1)
	}
}

func isTerminalLike() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// session holds the shell's overlay state.
type session struct {
	d     *chord.Driver
	gen   *keys.Generator
	first ids.ID
	out   io.Writer

	// Adversary state (docs/ADVERSARY.md): the installed eclipse
	// attacker, its RNG stream, and which live ring identities are its.
	att     *adversary.Attacker
	attRng  *xrand.Rand
	hostile map[ids.ID]bool
}

func run(in io.Reader, out io.Writer, interactive bool) error {
	s := &session{out: out, gen: keys.NewGenerator(uint64(0xc0ffee))}
	sc := bufio.NewScanner(in)
	for {
		if interactive {
			fmt.Fprint(out, "chord> ")
		}
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		if cmd == "quit" || cmd == "exit" {
			return nil
		}
		if err := s.dispatch(cmd, args); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	}
}

func (s *session) dispatch(cmd string, args []string) error {
	switch cmd {
	case "help":
		fmt.Fprint(s.out, `commands:
  create N           build a fresh N-node overlay
  join               add one node at a SHA-1 identifier
  kill INDEX         crash the INDEX-th node (see: ring)
  leave INDEX        graceful departure of the INDEX-th node
  put KEY VALUE...   store VALUE under SHA1(KEY)
  get KEY            fetch the value for KEY
  lookup KEY         resolve the owner of KEY and count hops
  trace KEY          show the full route a lookup takes
  dist               primary-key count per node (Table I at protocol level)
  ring               list live nodes with stored-key counts
  maint [N]          run N maintenance rounds (default 1)
  heal               lift any partition, then run maintenance until the ring converges
  plan [k=v ...]     set the fault plan (drop, crash, burst-every, burst-size,
                     retries, seed); 'plan off' clears it, bare 'plan' shows it
  chaos [T [R]]      run T chaos ticks of the installed plan (default 20),
                     stabilizing each crash wave within R rounds (default 200)
  partition FRAC     force a two-sided partition at FRAC of the ID space
  attack [k=v ...]   launch an eclipse adversary (budget, start, width, seed);
                     'attack off' withdraws it, bare 'attack' shows eclipse status
  defend [k=v ...]   run one density-detection pass (thr, window), evicting
                     flagged identities: hostile ones die, honest ones re-key
  stats              message and fault-transport counters
  quit               leave the shell
`)
		return nil
	case "create":
		n, err := atoiArg(args, 0, 8)
		if err != nil || n < 1 {
			return fmt.Errorf("usage: create N (N >= 1)")
		}
		s.d = chord.NewDriver(chord.NewNetwork(chord.Config{}), 0)
		s.first = s.gen.Next()
		if _, err := s.d.Create(s.first); err != nil {
			return err
		}
		for i := 1; i < n; i++ {
			if err := s.d.Join(s.gen.Next(), s.first); err != nil {
				return err
			}
			s.d.RunMaintenance()
		}
		s.healRing()
		fmt.Fprintf(s.out, "overlay up: %d nodes\n", len(s.d.AliveIDs()))
		return nil
	}

	if s.d == nil {
		return fmt.Errorf("no overlay yet: run 'create N' first")
	}
	switch cmd {
	case "join":
		id := s.gen.Next()
		boot := s.d.AliveIDs()
		if len(boot) == 0 {
			return fmt.Errorf("no live nodes to bootstrap from")
		}
		if err := s.d.Join(id, boot[0]); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "joined %s\n", id.Short())
		return nil
	case "kill", "leave":
		i, err := atoiArg(args, 0, -1)
		alive := s.d.AliveIDs()
		if err != nil || i < 0 || i >= len(alive) {
			return fmt.Errorf("usage: %s INDEX (0..%d)", cmd, len(alive)-1)
		}
		if cmd == "kill" {
			s.d.Kill(alive[i])
			fmt.Fprintf(s.out, "killed %s\n", alive[i].Short())
			return nil
		}
		if err := s.d.Leave(alive[i]); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "left %s\n", alive[i].Short())
		return nil
	case "put":
		if len(args) < 2 {
			return fmt.Errorf("usage: put KEY VALUE...")
		}
		if err := s.d.Put(keys.HashString(args[0]), strings.Join(args[1:], " ")); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "ok")
		return nil
	case "get":
		if len(args) != 1 {
			return fmt.Errorf("usage: get KEY")
		}
		v, err := s.d.Get(keys.HashString(args[0]))
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, v)
		return nil
	case "lookup":
		if len(args) != 1 {
			return fmt.Errorf("usage: lookup KEY")
		}
		owner, hops, err := s.d.Lookup(keys.HashString(args[0]))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "owner %s via %d hops\n", owner.Short(), hops)
		return nil
	case "trace":
		if len(args) != 1 {
			return fmt.Errorf("usage: trace KEY")
		}
		tr, err := s.d.Trace(keys.HashString(args[0]))
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, tr)
		return nil
	case "dist":
		alive := s.d.AliveIDs()
		for i, c := range s.d.KeyDistribution() {
			fmt.Fprintf(s.out, "%3d  %s  %d keys\n", i, alive[i].Short(), c)
		}
		return nil
	case "ring":
		for i, id := range s.d.AliveIDs() {
			fmt.Fprintf(s.out, "%3d  %s\n", i, id.Short())
		}
		return nil
	case "maint":
		n, err := atoiArg(args, 0, 1)
		if err != nil || n < 1 {
			return fmt.Errorf("usage: maint [N]")
		}
		for i := 0; i < n; i++ {
			s.d.RunMaintenance()
		}
		fmt.Fprintf(s.out, "ran %d rounds\n", n)
		return nil
	case "heal":
		if s.d.HealPartition() {
			fmt.Fprintln(s.out, "partition lifted")
		}
		rounds := s.healRing()
		if err := s.d.VerifyRing(); err != nil {
			return fmt.Errorf("still inconsistent after %d rounds: %w", rounds, err)
		}
		fmt.Fprintf(s.out, "converged after %d rounds\n", rounds)
		return nil
	case "plan":
		return s.planCmd(args)
	case "attack":
		return s.attackCmd(args)
	case "defend":
		return s.defendCmd(args)
	case "chaos":
		ticks, err := atoiArg(args, 0, 20)
		if err != nil || ticks < 1 {
			return fmt.Errorf("usage: chaos [TICKS [MAXROUNDS]]")
		}
		maxRounds, err := atoiArg(args, 1, 200)
		if err != nil || maxRounds < 1 {
			return fmt.Errorf("usage: chaos [TICKS [MAXROUNDS]]")
		}
		if _, ok := s.d.FaultPlan(); !ok {
			return fmt.Errorf("no fault plan installed: run 'plan crash=0.01' first")
		}
		rep := s.d.RunChaos(ticks, maxRounds)
		fmt.Fprintf(s.out, "ticks=%d crashed=%d waves=%d unconverged=%d\n",
			rep.Ticks, rep.Crashed, rep.Waves, rep.Unconverged)
		fmt.Fprintf(s.out, "mean-time-to-repair=%.2f max=%d rounds\n",
			rep.MeanTimeToRepair(), rep.MaxRepairRounds)
		fmt.Fprintf(s.out, "keys: tracked=%d recovered=%d lost=%d probe-failures=%d (success %.1f%%)\n",
			rep.KeysTracked, rep.KeysRecovered, rep.KeysLost, rep.ProbeFailures,
			100*rep.LookupSuccessRate())
		return nil
	case "partition":
		if len(args) != 1 {
			return fmt.Errorf("usage: partition FRAC (0 < FRAC < 1)")
		}
		frac, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return fmt.Errorf("usage: partition FRAC (0 < FRAC < 1)")
		}
		if err := s.d.Partition(frac); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "partitioned at %g of the ID space\n", frac)
		return nil
	case "stats":
		st := s.d.Stats()
		fmt.Fprintf(s.out, "nodes=%d dead=%d messages=%d maintenance-rounds=%d\n",
			st.AliveNodes, st.DeadNodes, st.Messages, s.d.MaintenanceRounds())
		fmt.Fprintf(s.out, "primary-keys=%d stored-entries=%d mean-replication=%.2f ring-ok=%v\n",
			st.PrimaryKeys, st.TotalKeys, st.MeanReplication, st.RingConsistent)
		if _, ok := s.d.FaultPlan(); ok {
			ts := s.d.TransportStats()
			fmt.Fprintf(s.out, "sends=%d drops=%d retries=%d timeouts=%d backoff-ticks=%d partition-refusals=%d\n",
				ts.Sends, ts.Drops, ts.Retries, ts.Timeouts, ts.BackoffTicks, ts.PartitionRefusals)
			fmt.Fprintf(s.out, "lookups=%d failures=%d (success %.1f%%)\n",
				ts.Lookups, ts.LookupFailures, 100*ts.LookupSuccessRate())
		}
		return nil
	}
	return fmt.Errorf("unknown command %q (try: help)", cmd)
}

// planCmd sets, clears, or shows the overlay's fault plan.
func (s *session) planCmd(args []string) error {
	if len(args) == 0 {
		p, ok := s.d.FaultPlan()
		if !ok {
			fmt.Fprintln(s.out, "no fault plan installed")
			return nil
		}
		fmt.Fprintf(s.out, "drop=%g crash=%g burst-every=%d burst-size=%d retries=%d seed=%d\n",
			p.DropRate, p.CrashRate, p.BurstEvery, p.BurstSize, p.MaxRetries, p.Seed)
		return nil
	}
	if len(args) == 1 && args[0] == "off" {
		if err := s.d.SetFaultPlan(faults.Plan{}); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "fault plan cleared")
		return nil
	}
	var p faults.Plan
	if cur, ok := s.d.FaultPlan(); ok {
		p = cur
	}
	for _, kv := range args {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			return fmt.Errorf("bad plan setting %q (want key=value)", kv)
		}
		switch k {
		case "drop", "crash":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad %s value %q", k, v)
			}
			if k == "drop" {
				p.DropRate = f
			} else {
				p.CrashRate = f
			}
		case "burst-every", "burst-size", "retries":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s value %q", k, v)
			}
			switch k {
			case "burst-every":
				p.BurstEvery = n
			case "burst-size":
				p.BurstSize = n
			default:
				p.MaxRetries = n
			}
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed value %q", v)
			}
			p.Seed = n
		default:
			return fmt.Errorf("unknown plan key %q (drop, crash, burst-every, burst-size, retries, seed)", k)
		}
	}
	if err := s.d.SetFaultPlan(p); err != nil {
		return err
	}
	fmt.Fprintln(s.out, "fault plan installed")
	return nil
}

// attackCmd launches, shows, or withdraws an eclipse adversary on the
// overlay (docs/ADVERSARY.md). The shell has no tick clock, so the
// attacker mints its whole budget at once — each hostile identity is a
// normal protocol join at a clustered ID — and the eclipse report reads
// owner capture (replicas=1): the fraction of the target arc whose
// primary owner is hostile.
func (s *session) attackCmd(args []string) error {
	if len(args) == 0 {
		if s.att == nil {
			fmt.Fprintln(s.out, "no attack installed")
			return nil
		}
		fmt.Fprintf(s.out, "live=%d minted=%d evicted=%d eclipse=%.3f\n",
			s.att.Live(), s.att.MintCount(), s.att.EvictCount(), s.eclipse())
		return nil
	}
	if len(args) == 1 && args[0] == "off" {
		for id := range s.hostile {
			s.d.Kill(id)
		}
		s.att, s.attRng, s.hostile = nil, nil, nil
		s.healRing()
		fmt.Fprintln(s.out, "attack withdrawn")
		return nil
	}
	cfg := adversary.AttackConfig{Budget: 8, TargetStart: 0.2, TargetWidth: 1.0 / 16}
	seed := uint64(1)
	for _, kv := range args {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			return fmt.Errorf("bad attack setting %q (want key=value)", kv)
		}
		switch k {
		case "budget":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad budget value %q", v)
			}
			cfg.Budget = n
		case "start", "width":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad %s value %q", k, v)
			}
			if k == "start" {
				cfg.TargetStart = f
			} else {
				cfg.TargetWidth = f
			}
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed value %q", v)
			}
			seed = n
		default:
			return fmt.Errorf("unknown attack key %q (budget, start, width, seed)", k)
		}
	}
	if s.att != nil {
		return fmt.Errorf("attack already installed: 'attack off' first")
	}
	// Mint the whole budget in one burst: no clock means nothing paces
	// the adversary, so give it exactly the work its budget needs.
	cfg.WorkRate = cfg.Budget
	att, err := adversary.NewAttacker(cfg)
	if err != nil {
		return err
	}
	s.att, s.attRng, s.hostile = att, xrand.New(seed), make(map[ids.ID]bool)
	boot := s.d.AliveIDs()
	if len(boot) == 0 {
		return fmt.Errorf("no live nodes to bootstrap from")
	}
	att.Accrue()
	for att.CanMint(1) {
		placed := false
		for try := 0; try < 16 && !placed; try++ {
			id := att.MintID(s.attRng)
			if err := s.d.Join(id, boot[0]); err != nil {
				continue // occupied or unlucky ID: draw again
			}
			s.hostile[id] = true
			att.Minted(1)
			s.d.RunMaintenance()
			placed = true
		}
		if !placed {
			break // arc too crowded to place the rest of the budget
		}
	}
	s.healRing()
	fmt.Fprintf(s.out, "attack up: %d hostile identities, eclipse=%.3f\n",
		att.Live(), s.eclipse())
	return nil
}

// defendCmd runs one density-detection pass over the live ring order
// and evicts every flagged identity: hostile ones are killed outright
// (the defense's success), honest ones are forced to re-key — leave and
// rejoin under a fresh identifier — and counted as false evictions (the
// defense's collateral; honest Sybil balancers are dense by design).
func (s *session) defendCmd(args []string) error {
	cfg := adversary.DefenseConfig{Threshold: 4}
	for _, kv := range args {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			return fmt.Errorf("bad defend setting %q (want key=value)", kv)
		}
		switch k {
		case "thr":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad thr value %q", v)
			}
			cfg.Threshold = f
		case "window":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad window value %q", v)
			}
			cfg.Window = n
		default:
			return fmt.Errorf("unknown defend key %q (thr, window)", k)
		}
	}
	det, err := adversary.NewDetector(cfg)
	if err != nil {
		return err
	}
	ring := s.d.AliveIDs()
	flagged := det.Flagged(len(ring), func(i int) ids.ID { return ring[i] })
	var hostileEv, honestEv int
	for _, i := range flagged {
		id := ring[i]
		if s.hostile[id] {
			s.d.Kill(id)
			delete(s.hostile, id)
			if s.att != nil {
				s.att.Evicted()
			}
			hostileEv++
			continue
		}
		// Honest collateral: re-key rather than remove — the machine
		// behind the identity is innocent, only its placement dies.
		if err := s.d.Leave(id); err != nil {
			s.d.Kill(id)
		}
		if live := s.d.AliveIDs(); len(live) > 0 {
			if err := s.d.Join(s.gen.Next(), live[0]); err == nil {
				s.d.RunMaintenance()
			}
		}
		honestEv++
	}
	s.healRing()
	rate := 0.0
	if hostileEv+honestEv > 0 {
		rate = float64(honestEv) / float64(hostileEv+honestEv)
	}
	fmt.Fprintf(s.out, "flagged=%d evicted-hostile=%d rekeyed-honest=%d false-eviction-rate=%.3f eclipse=%.3f\n",
		len(flagged), hostileEv, honestEv, rate, s.eclipse())
	return nil
}

// eclipse measures owner capture of the attack's target arc: the
// fraction whose primary owner is hostile (replicas=1 — the shell's
// overlay stores replicas too, but owner capture is the readable
// headline at interactive scale).
func (s *session) eclipse() float64 {
	if s.att == nil {
		return 0
	}
	lo, hi := s.att.Target()
	ring := s.d.AliveIDs()
	return adversary.EclipsedFraction(len(ring),
		func(i int) ids.ID { return ring[i] },
		func(i int) bool { return s.hostile[ring[i]] },
		lo, hi, 1)
}

// healRing runs maintenance until convergence (bounded) and returns the
// rounds used.
func (s *session) healRing() int {
	for i := 1; i <= 4*len(s.d.AliveIDs())+16; i++ {
		s.d.RunMaintenance()
		if s.d.VerifyRing() == nil {
			return i
		}
	}
	return 4*len(s.d.AliveIDs()) + 16
}

func atoiArg(args []string, i, def int) (int, error) {
	if len(args) <= i {
		if def >= 0 {
			return def, nil
		}
		return 0, fmt.Errorf("missing argument")
	}
	return strconv.Atoi(args[i])
}
