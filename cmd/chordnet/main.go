// Command chordnet is an interactive shell over a live Chord overlay —
// the internal/chord protocol with background maintenance — for poking at
// the substrate the simulator abstracts: watch lookups route, crash
// nodes, and see replication keep data alive.
//
//	$ go run ./cmd/chordnet
//	chord> create 16
//	chord> put alice hello
//	chord> kill 3
//	chord> maint 40
//	chord> get alice
//	hello
//
// Commands also stream from stdin, so it is scriptable:
//
//	echo "create 8\nput k v\nget k" | go run ./cmd/chordnet
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"chordbalance/internal/chord"
	"chordbalance/internal/ids"
	"chordbalance/internal/keys"
)

func main() {
	if err := run(os.Stdin, os.Stdout, isTerminalLike()); err != nil {
		fmt.Fprintln(os.Stderr, "chordnet:", err)
		os.Exit(1)
	}
}

func isTerminalLike() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// session holds the shell's overlay state.
type session struct {
	d     *chord.Driver
	gen   *keys.Generator
	first ids.ID
	out   io.Writer
}

func run(in io.Reader, out io.Writer, interactive bool) error {
	s := &session{out: out, gen: keys.NewGenerator(uint64(0xc0ffee))}
	sc := bufio.NewScanner(in)
	for {
		if interactive {
			fmt.Fprint(out, "chord> ")
		}
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		if cmd == "quit" || cmd == "exit" {
			return nil
		}
		if err := s.dispatch(cmd, args); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	}
}

func (s *session) dispatch(cmd string, args []string) error {
	switch cmd {
	case "help":
		fmt.Fprint(s.out, `commands:
  create N           build a fresh N-node overlay
  join               add one node at a SHA-1 identifier
  kill INDEX         crash the INDEX-th node (see: ring)
  leave INDEX        graceful departure of the INDEX-th node
  put KEY VALUE...   store VALUE under SHA1(KEY)
  get KEY            fetch the value for KEY
  lookup KEY         resolve the owner of KEY and count hops
  trace KEY          show the full route a lookup takes
  dist               primary-key count per node (Table I at protocol level)
  ring               list live nodes with stored-key counts
  maint [N]          run N maintenance rounds (default 1)
  heal               run maintenance until the ring converges
  stats              message counters
  quit               leave the shell
`)
		return nil
	case "create":
		n, err := atoiArg(args, 0, 8)
		if err != nil || n < 1 {
			return fmt.Errorf("usage: create N (N >= 1)")
		}
		s.d = chord.NewDriver(chord.NewNetwork(chord.Config{}), 0)
		s.first = s.gen.Next()
		if _, err := s.d.Create(s.first); err != nil {
			return err
		}
		for i := 1; i < n; i++ {
			if err := s.d.Join(s.gen.Next(), s.first); err != nil {
				return err
			}
			s.d.RunMaintenance()
		}
		s.healRing()
		fmt.Fprintf(s.out, "overlay up: %d nodes\n", len(s.d.AliveIDs()))
		return nil
	}

	if s.d == nil {
		return fmt.Errorf("no overlay yet: run 'create N' first")
	}
	switch cmd {
	case "join":
		id := s.gen.Next()
		boot := s.d.AliveIDs()
		if len(boot) == 0 {
			return fmt.Errorf("no live nodes to bootstrap from")
		}
		if err := s.d.Join(id, boot[0]); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "joined %s\n", id.Short())
		return nil
	case "kill", "leave":
		i, err := atoiArg(args, 0, -1)
		alive := s.d.AliveIDs()
		if err != nil || i < 0 || i >= len(alive) {
			return fmt.Errorf("usage: %s INDEX (0..%d)", cmd, len(alive)-1)
		}
		if cmd == "kill" {
			s.d.Kill(alive[i])
			fmt.Fprintf(s.out, "killed %s\n", alive[i].Short())
			return nil
		}
		if err := s.d.Leave(alive[i]); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "left %s\n", alive[i].Short())
		return nil
	case "put":
		if len(args) < 2 {
			return fmt.Errorf("usage: put KEY VALUE...")
		}
		if err := s.d.Put(keys.HashString(args[0]), strings.Join(args[1:], " ")); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "ok")
		return nil
	case "get":
		if len(args) != 1 {
			return fmt.Errorf("usage: get KEY")
		}
		v, err := s.d.Get(keys.HashString(args[0]))
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, v)
		return nil
	case "lookup":
		if len(args) != 1 {
			return fmt.Errorf("usage: lookup KEY")
		}
		owner, hops, err := s.d.Lookup(keys.HashString(args[0]))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "owner %s via %d hops\n", owner.Short(), hops)
		return nil
	case "trace":
		if len(args) != 1 {
			return fmt.Errorf("usage: trace KEY")
		}
		tr, err := s.d.Trace(keys.HashString(args[0]))
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, tr)
		return nil
	case "dist":
		alive := s.d.AliveIDs()
		for i, c := range s.d.KeyDistribution() {
			fmt.Fprintf(s.out, "%3d  %s  %d keys\n", i, alive[i].Short(), c)
		}
		return nil
	case "ring":
		for i, id := range s.d.AliveIDs() {
			fmt.Fprintf(s.out, "%3d  %s\n", i, id.Short())
		}
		return nil
	case "maint":
		n, err := atoiArg(args, 0, 1)
		if err != nil || n < 1 {
			return fmt.Errorf("usage: maint [N]")
		}
		for i := 0; i < n; i++ {
			s.d.RunMaintenance()
		}
		fmt.Fprintf(s.out, "ran %d rounds\n", n)
		return nil
	case "heal":
		rounds := s.healRing()
		if err := s.d.VerifyRing(); err != nil {
			return fmt.Errorf("still inconsistent after %d rounds: %w", rounds, err)
		}
		fmt.Fprintf(s.out, "converged after %d rounds\n", rounds)
		return nil
	case "stats":
		st := s.d.Stats()
		fmt.Fprintf(s.out, "nodes=%d dead=%d messages=%d maintenance-rounds=%d\n",
			st.AliveNodes, st.DeadNodes, st.Messages, s.d.MaintenanceRounds())
		fmt.Fprintf(s.out, "primary-keys=%d stored-entries=%d mean-replication=%.2f ring-ok=%v\n",
			st.PrimaryKeys, st.TotalKeys, st.MeanReplication, st.RingConsistent)
		return nil
	}
	return fmt.Errorf("unknown command %q (try: help)", cmd)
}

// healRing runs maintenance until convergence (bounded) and returns the
// rounds used.
func (s *session) healRing() int {
	for i := 1; i <= 4*len(s.d.AliveIDs())+16; i++ {
		s.d.RunMaintenance()
		if s.d.VerifyRing() == nil {
			return i
		}
	}
	return 4*len(s.d.AliveIDs()) + 16
}

func atoiArg(args []string, i, def int) (int, error) {
	if len(args) <= i {
		if def >= 0 {
			return def, nil
		}
		return 0, fmt.Errorf("missing argument")
	}
	return strconv.Atoi(args[i])
}
