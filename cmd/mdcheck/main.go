// Command mdcheck validates the repository's Markdown documentation
// offline: every relative link must resolve to an existing file and
// every #fragment must name a real heading anchor (GitHub slug rules).
// External URLs are never fetched, so the check is deterministic and
// safe for CI. Findings print as "file:line: link (target): reason" and
// any finding makes the exit status nonzero; `make lint` runs it next
// to dhtlint (see docs/LINTING.md).
//
//	mdcheck            # check the tree rooted at the current directory
//	mdcheck docs ..    # check one or more explicit roots
package main

import (
	"fmt"
	"io"
	"os"

	"chordbalance/internal/mdlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	roots := args
	if len(roots) == 0 {
		roots = []string{"."}
	}
	total := 0
	for _, root := range roots {
		findings, err := mdlint.CheckTree(root)
		if err != nil {
			fmt.Fprintln(errw, "mdcheck:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(errw, "mdcheck: %d broken link(s)\n", total)
		return 1
	}
	return 0
}
