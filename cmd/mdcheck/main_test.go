package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCleanTree(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "a.md"), []byte("# A\n\n[self](#a)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	if code := run([]string{root}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw.String())
	}
}

func TestRunBrokenLinkFailsClosed(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "a.md"), []byte("[x](missing.md)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	if code := run([]string{root}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "missing.md") {
		t.Fatalf("output = %q", out.String())
	}
}

// TestRepositoryDocsAreClean runs the checker over the actual module
// tree, so a broken doc link fails `go test ./...` as well as CI's
// dedicated step.
func TestRepositoryDocsAreClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Skip("module root not found:", err)
	}
	var out, errw strings.Builder
	if code := run([]string{root}, &out, &errw); code != 0 {
		t.Fatalf("repository docs have broken links:\n%s", out.String())
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
