module chordbalance

go 1.22
