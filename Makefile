# Reproduction entry points. Everything is plain `go` underneath; these
# targets just name the workflows.

GO ?= go

.PHONY: all build lint doccheck mdcheck trace-check test test-race cover bench bench-micro bench-gate bench-curve shard-check sweep figures fuzz chaos soak stream-soak sybilwar clean

# The BENCH_<pr> suffix for perf reports; bump per perf-focused PR.
BENCH_PR ?= 8

all: build lint test

build:
	$(GO) build ./...
	$(GO) vet ./...

# Determinism & concurrency linter plus the documentation checkers;
# see docs/LINTING.md. The -suppressions pass is advisory (always exit
# 0): it warns about //lint:ignore directives that no longer suppress
# anything so they get cleaned up with the code they excused.
lint:
	$(GO) run ./cmd/dhtlint ./...
	$(GO) run ./cmd/dhtlint -suppressions ./...
	$(GO) run ./cmd/mdcheck

# Just the godoc rule, for quick iteration while writing docs.
doccheck:
	$(GO) run ./cmd/dhtlint -rules doccomment ./...

# Just the Markdown link/anchor checker (also part of `make lint`).
mdcheck:
	$(GO) run ./cmd/mdcheck

# Trace determinism audit (docs/OBSERVABILITY.md): two fresh runs at one
# seed must produce byte-identical JSONL traces, and dhttrace must agree.
trace-check:
	@rm -rf /tmp/chordbalance-trace-check && mkdir -p /tmp/chordbalance-trace-check
	$(GO) run ./cmd/dhtsim -nodes 500 -tasks 50000 -strategy random -churn 0.02 \
	  -seed 7 -trace /tmp/chordbalance-trace-check/a.jsonl > /dev/null
	$(GO) run ./cmd/dhtsim -nodes 500 -tasks 50000 -strategy random -churn 0.02 \
	  -seed 7 -trace /tmp/chordbalance-trace-check/b.jsonl > /dev/null
	cmp /tmp/chordbalance-trace-check/a.jsonl /tmp/chordbalance-trace-check/b.jsonl
	$(GO) run ./cmd/dhttrace diff /tmp/chordbalance-trace-check/a.jsonl /tmp/chordbalance-trace-check/b.jsonl

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

# Record the performance-trajectory report (docs/PERFORMANCE.md): runs
# the fixed dhtbench workload matrix and writes BENCH_$(BENCH_PR).json,
# carrying the existing report's current section forward as the new
# baseline when one is present.
bench:
	@if [ -f BENCH_$(BENCH_PR).json ]; then \
	  $(GO) run ./cmd/dhtbench -trials 3 -seed 1 -label pr$(BENCH_PR) \
	    -baseline BENCH_$(BENCH_PR).json -out BENCH_$(BENCH_PR).json; \
	else \
	  $(GO) run ./cmd/dhtbench -trials 3 -seed 1 -label pr$(BENCH_PR) \
	    -out BENCH_$(BENCH_PR).json; \
	fi

# Compare fresh runs against the committed report; fails on >15% ns/tick
# regression (and on any tick-count drift, which is a determinism break).
bench-gate:
	$(GO) run ./cmd/dhtbench -gate BENCH_$(BENCH_PR).json -tolerance 0.15

# Record the shard scaling curve (docs/PERFORMANCE.md): the scale-*
# workloads at 1/2/4/8 intra-trial workers, identical seeds, with a
# tick-equality determinism check built in. Writes CURVE_$(BENCH_PR).json
# plus a Markdown rendering alongside it.
bench-curve:
	$(GO) run ./cmd/dhtbench -curve -curve-cores 1,2,4,8 \
	  -workloads scale-100k,scale-1m -label pr$(BENCH_PR) \
	  -out CURVE_$(BENCH_PR).json

# Shard-identity referee: the golden matrix at 1/2/4/8 shards, shard-count
# invariance, and the sharded experiment driver, all under the race
# detector (docs/PERFORMANCE.md).
shard-check:
	$(GO) test -race -run 'Shard|DeterminismGolden' ./internal/sim/

# Go micro/paper benchmarks: table/figure reproductions at the repo root
# plus the ring and sim hot-path benchmarks (reduced trials).
bench-micro:
	$(GO) test -bench=. -benchmem ./...

# Publication-strength sweep of every experiment (slow; the paper used
# 100 trials per cell).
sweep:
	$(GO) run ./cmd/dhtsweep -exp all -trials 100

# Quick sweep matching sweep_results.txt.
sweep-quick:
	$(GO) run ./cmd/dhtsweep -exp all -trials 5 -seed 1

# Regenerate every figure as SVG into ./figures/.
figures:
	$(GO) run ./cmd/dhtfig -all figures
	$(GO) run ./cmd/ringviz -mode sha1 -svg figures/figure02.svg
	$(GO) run ./cmd/ringviz -mode even -svg figures/figure03.svg

# Exercise the fuzz targets beyond their seed corpora.
fuzz:
	$(GO) test -fuzz=FuzzOperationSequences -fuzztime=30s ./internal/ring/
	$(GO) test -fuzz=FuzzArithmeticLaws -fuzztime=30s ./internal/ids/
	$(GO) test -fuzz=FuzzFaultPlan -fuzztime=30s ./internal/sim/
	$(GO) test -fuzz=FuzzWireRoundTrip -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzStoreRecord -fuzztime=30s ./internal/store/

# 60-second loopback soak of the networked runtime (docs/NETWORK.md):
# a 16-host cluster over real TCP sockets under frame loss and a mid-run
# partition. Asserts no goroutine leaks after shutdown and no lost keys
# with Replicas >= 2. Gated behind a build tag so `go test ./...` stays
# fast.
soak:
	$(GO) test -tags soak -run 'TestSoakCluster|TestSoakDurableStore' -v -timeout 10m ./internal/netchord/

# 30-second streaming soak (docs/STREAMING.md): 32 viewers stream a
# chunked catalog off a 12-host TCP cluster through cached routes while
# frames drop and a mid-run partition heals. Gates on a sane rebuffer
# rate, byte-exact delivery, and zero acked-chunk loss after the heal.
stream-soak:
	$(GO) test -tags soak -run TestSoakStream -v -timeout 10m ./internal/netchord/

# Adversary smoke (docs/ADVERSARY.md): the sybilwar referees under the
# race detector — the hostile-engine golden matrix at 1/2/4 shards, the
# eclipse-vs-defense dose ladder, the sweep's serial/parallel identity,
# the full adversary unit suite, and the live-cluster half (puzzle join
# gate + eclipse suppression over real sockets).
sybilwar:
	$(GO) test -race -run 'Sybilwar|Adversary|Eclipse|Puzzle|Detector|Attacker|Density|FalseEvict' \
	  ./internal/adversary/ ./internal/sim/ ./internal/experiments/
	$(GO) test -race -run 'TestJoinPuzzleGate|TestEclipseSuppressedByDefense' \
	  -timeout 10m ./internal/netchord/

# Fault-matrix smoke (docs/FAULTS.md): 3 seeds x {crash bursts, 10%
# message loss, partition+heal} on both the engine and the protocol,
# mirroring the CI job.
chaos:
	@for seed in 1 2 3; do \
	  echo "== seed $$seed: crash bursts =="; \
	  $(GO) run ./cmd/dhtsim -nodes 100 -tasks 10000 -strategy random \
	    -crash-rate 0.002 -crash-burst-every 25 -crash-burst-size 2 -seed $$seed || exit 1; \
	  echo "== seed $$seed: crash bursts, no replication =="; \
	  $(GO) run ./cmd/dhtsim -nodes 100 -tasks 10000 -strategy random \
	    -crash-rate 0.002 -crash-burst-every 25 -crash-burst-size 2 -replicas -1 -seed $$seed || exit 1; \
	  echo "== seed $$seed: partition+heal =="; \
	  $(GO) run ./cmd/dhtsim -nodes 100 -tasks 10000 -strategy random -churn 0.02 \
	    -partition 0.3 -partition-start 10 -partition-heal 60 -seed $$seed || exit 1; \
	  echo "== seed $$seed: protocol chaos (10% loss + crashes) =="; \
	  printf 'create 24\nput k v\nmaint 5\nplan crash=0.01 burst-every=10 burst-size=2 drop=0.1 seed=%s\nchaos 30\nheal\nget k\nquit\n' $$seed \
	    | $(GO) run ./cmd/chordnet || exit 1; \
	done

clean:
	$(GO) clean -testcache
	rm -rf figures
