# Reproduction entry points. Everything is plain `go` underneath; these
# targets just name the workflows.

GO ?= go

.PHONY: all build lint test test-race cover bench sweep figures fuzz clean

all: build lint test

build:
	$(GO) build ./...
	$(GO) vet ./...

# Determinism & concurrency linter; see docs/LINTING.md.
lint:
	$(GO) run ./cmd/dhtlint ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

# Smoke-reproduce every table and figure (reduced trials).
bench:
	$(GO) test -bench=. -benchmem ./...

# Publication-strength sweep of every experiment (slow; the paper used
# 100 trials per cell).
sweep:
	$(GO) run ./cmd/dhtsweep -exp all -trials 100

# Quick sweep matching sweep_results.txt.
sweep-quick:
	$(GO) run ./cmd/dhtsweep -exp all -trials 5 -seed 1

# Regenerate every figure as SVG into ./figures/.
figures:
	$(GO) run ./cmd/dhtfig -all figures
	$(GO) run ./cmd/ringviz -mode sha1 -svg figures/figure02.svg
	$(GO) run ./cmd/ringviz -mode even -svg figures/figure03.svg

# Exercise the fuzz targets beyond their seed corpora.
fuzz:
	$(GO) test -fuzz=FuzzOperationSequences -fuzztime=30s ./internal/ring/
	$(GO) test -fuzz=FuzzArithmeticLaws -fuzztime=30s ./internal/ids/

clean:
	$(GO) clean -testcache
	rm -rf figures
